package policy

import (
	"fmt"

	"hpe/internal/addrspace"
)

// lruNode is an intrusive doubly-linked-list node. The recency chain is
// ordered head = LRU, tail = MRU.
type lruNode struct {
	page       addrspace.PageID
	prev, next *lruNode
}

// recencyList is a doubly-linked list with O(1) move-to-tail, shared by LRU
// and FIFO (and reused as a building block elsewhere).
type recencyList struct {
	head, tail *lruNode
	index      map[addrspace.PageID]*lruNode
}

func newRecencyList() *recencyList {
	return &recencyList{index: make(map[addrspace.PageID]*lruNode)}
}

func (l *recencyList) len() int { return len(l.index) }

func (l *recencyList) contains(p addrspace.PageID) bool {
	_, ok := l.index[p]
	return ok
}

// pushMRU inserts p at the MRU (tail) position; p must not be present.
func (l *recencyList) pushMRU(p addrspace.PageID) {
	if _, ok := l.index[p]; ok {
		panic(fmt.Sprintf("policy: page %v already in recency list", p))
	}
	//lint:ignore hpelint/hotalloc one node per mapped page; mapping happens on the priced far-fault path
	n := &lruNode{page: p}
	l.index[p] = n
	if l.tail == nil {
		l.head, l.tail = n, n
		return
	}
	n.prev = l.tail
	l.tail.next = n
	l.tail = n
}

// touch moves p to the MRU position if present, reporting whether it was.
func (l *recencyList) touch(p addrspace.PageID) bool {
	n, ok := l.index[p]
	if !ok {
		return false
	}
	if l.tail == n {
		return true
	}
	l.unlink(n)
	n.prev, n.next = l.tail, nil
	l.tail.next = n
	l.tail = n
	return true
}

func (l *recencyList) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// remove deletes p, reporting whether it was present.
func (l *recencyList) remove(p addrspace.PageID) bool {
	n, ok := l.index[p]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.index, p)
	return true
}

// lru returns the LRU (head) page; ok is false when empty.
func (l *recencyList) lru() (addrspace.PageID, bool) {
	if l.head == nil {
		return 0, false
	}
	return l.head.page, true
}

// LRU is the classic least-recently-used page replacement policy, managed at
// page granularity, under the paper's "ideal model": walk hits and faults
// both refresh recency in exact reference order.
type LRU struct {
	chain *recencyList
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU { return &LRU{chain: newRecencyList()} }

// NewLRUFactory adapts NewLRU to the Factory signature.
func NewLRUFactory(capacityPages int) Policy { return NewLRU() }

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// OnWalkHit implements Policy: refresh recency.
func (l *LRU) OnWalkHit(p addrspace.PageID, seq int) { l.chain.touch(p) }

// OnFault implements Policy (no-op: the page is inserted on OnMapped).
func (l *LRU) OnFault(p addrspace.PageID, seq int) {}

// OnMapped implements Policy: insert at MRU.
func (l *LRU) OnMapped(p addrspace.PageID, seq int) { l.chain.pushMRU(p) }

// SelectVictim implements Policy: the LRU page.
func (l *LRU) SelectVictim() addrspace.PageID {
	p, ok := l.chain.lru()
	if !ok {
		panic("policy: LRU.SelectVictim on empty chain")
	}
	return p
}

// OnEvicted implements Policy.
func (l *LRU) OnEvicted(p addrspace.PageID) { l.chain.remove(p) }

// Len returns the number of tracked resident pages.
func (l *LRU) Len() int { return l.chain.len() }

// FIFO evicts in arrival order, ignoring hits. Not evaluated in the paper;
// provided as an additional reference point for the ablation benches.
type FIFO struct {
	chain *recencyList
}

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO { return &FIFO{chain: newRecencyList()} }

// NewFIFOFactory adapts NewFIFO to the Factory signature.
func NewFIFOFactory(capacityPages int) Policy { return NewFIFO() }

// Name implements Policy.
func (f *FIFO) Name() string { return "FIFO" }

// OnWalkHit implements Policy: FIFO ignores hits.
func (f *FIFO) OnWalkHit(p addrspace.PageID, seq int) {}

// OnFault implements Policy.
func (f *FIFO) OnFault(p addrspace.PageID, seq int) {}

// OnMapped implements Policy.
func (f *FIFO) OnMapped(p addrspace.PageID, seq int) { f.chain.pushMRU(p) }

// SelectVictim implements Policy: the oldest arrival.
func (f *FIFO) SelectVictim() addrspace.PageID {
	p, ok := f.chain.lru()
	if !ok {
		panic("policy: FIFO.SelectVictim on empty chain")
	}
	return p
}

// OnEvicted implements Policy.
func (f *FIFO) OnEvicted(p addrspace.PageID) { f.chain.remove(p) }

package policy

import (
	"fmt"

	"hpe/internal/addrspace"
)

// ARC implements the Adaptive Replacement Cache (Megiddo & Modha, FAST '03),
// which the paper's related-work section cites as an influential self-tuning
// policy (CAR and CLOCK-Pro both build on its ideas). Four lists: T1 holds
// pages seen once recently, T2 pages seen at least twice; B1/B2 are their
// ghost extensions (metadata of recently evicted pages). A hit in a ghost
// list adapts the target size p of T1.
//
// Adaptation to the UVM driver contract: the driver evicts exactly one page
// per fault (SelectVictim → OnEvicted), and maps the faulting page afterward
// (OnMapped). ARC's REPLACE decision is computed in SelectVictim from the
// ghost status of the pending fault, recorded in OnFault.
type ARC struct {
	capacity int
	p        int // target size of T1

	t1, t2, b1, b2 *recencyList

	// pending describes the fault being serviced: whether the page hit a
	// ghost list (and which), so that REPLACE and the final insertion behave
	// per the ARC pseudocode.
	pendingPage addrspace.PageID
	pendingList int // 0 = cold miss, 1 = B1 hit, 2 = B2 hit
}

// NewARC returns an ARC policy for a memory of capacityPages.
func NewARC(capacityPages int) *ARC {
	if capacityPages <= 0 {
		panic(fmt.Sprintf("policy: ARC capacity %d must be positive", capacityPages))
	}
	return &ARC{
		capacity: capacityPages,
		t1:       newRecencyList(),
		t2:       newRecencyList(),
		b1:       newRecencyList(),
		b2:       newRecencyList(),
	}
}

// NewARCFactory adapts NewARC to the Factory signature.
func NewARCFactory(capacityPages int) Policy { return NewARC(capacityPages) }

// Name implements Policy.
func (a *ARC) Name() string { return "ARC" }

// OnWalkHit implements Policy: a resident hit promotes the page to T2 MRU.
func (a *ARC) OnWalkHit(p addrspace.PageID, seq int) {
	if a.t1.remove(p) || a.t2.remove(p) {
		a.t2.pushMRU(p)
	}
}

// OnFault implements Policy: record ghost status and adapt p.
func (a *ARC) OnFault(p addrspace.PageID, seq int) {
	a.pendingPage = p
	switch {
	case a.b1.contains(p):
		a.pendingList = 1
		delta := 1
		if a.b1.len() > 0 && a.b2.len() > a.b1.len() {
			delta = a.b2.len() / a.b1.len()
		}
		a.p = min(a.capacity, a.p+delta)
	case a.b2.contains(p):
		a.pendingList = 2
		delta := 1
		if a.b2.len() > 0 && a.b1.len() > a.b2.len() {
			delta = a.b1.len() / a.b2.len()
		}
		a.p = max(0, a.p-delta)
	default:
		a.pendingList = 0
	}
}

// SelectVictim implements Policy: ARC's REPLACE — evict from T1 when it
// exceeds its target (or exactly meets it on a B2 hit), otherwise from T2.
func (a *ARC) SelectVictim() addrspace.PageID {
	t1Len := a.t1.len()
	useT1 := t1Len > 0 && (t1Len > a.p || (a.pendingList == 2 && t1Len == a.p))
	if useT1 {
		v, _ := a.t1.lru()
		return v
	}
	if v, ok := a.t2.lru(); ok {
		return v
	}
	if v, ok := a.t1.lru(); ok {
		return v
	}
	panic("policy: ARC.SelectVictim with no resident pages")
}

// OnEvicted implements Policy: the page's metadata moves to the matching
// ghost list.
func (a *ARC) OnEvicted(p addrspace.PageID) {
	if a.t1.remove(p) {
		a.b1.pushMRU(p)
	} else if a.t2.remove(p) {
		a.b2.pushMRU(p)
	}
	a.trimGhosts()
}

// OnMapped implements Policy: complete the insertion — ghost hits go to T2,
// cold misses to T1 — and drop the page's ghost entry.
func (a *ARC) OnMapped(p addrspace.PageID, seq int) {
	list := 0
	if p == a.pendingPage {
		list = a.pendingList
	} else if a.b1.contains(p) {
		list = 1
	} else if a.b2.contains(p) {
		list = 2
	}
	a.b1.remove(p)
	a.b2.remove(p)
	if list != 0 {
		a.t2.pushMRU(p)
	} else {
		a.t1.pushMRU(p)
	}
	a.trimGhosts()
}

// trimGhosts enforces ARC's directory bounds: |T1|+|B1| ≤ c and the whole
// directory ≤ 2c.
func (a *ARC) trimGhosts() {
	for a.t1.len()+a.b1.len() > a.capacity && a.b1.len() > 0 {
		if v, ok := a.b1.lru(); ok {
			a.b1.remove(v)
		}
	}
	for a.t1.len()+a.t2.len()+a.b1.len()+a.b2.len() > 2*a.capacity && a.b2.len() > 0 {
		if v, ok := a.b2.lru(); ok {
			a.b2.remove(v)
		}
	}
}

// Sizes reports (|T1|, |T2|, |B1|, |B2|, p) for tests and diagnostics.
func (a *ARC) Sizes() (t1, t2, b1, b2, p int) {
	return a.t1.len(), a.t2.len(), a.b1.len(), a.b2.len(), a.p
}

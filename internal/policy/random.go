package policy

import (
	"math/rand"

	"hpe/internal/addrspace"
)

// Random evicts a uniformly random resident page. Zheng et al. showed random
// to be competitive with LRU for many UVM workloads; the paper corroborates
// that except on Types IV and VI.
type Random struct {
	rng   *rand.Rand
	pages []addrspace.PageID
	pos   map[addrspace.PageID]int
}

// NewRandom returns a Random policy with a deterministic seed.
func NewRandom(seed int64) *Random {
	return &Random{
		rng: rand.New(rand.NewSource(seed)),
		pos: make(map[addrspace.PageID]int),
	}
}

// NewRandomFactory returns a Factory producing seeded Random policies.
func NewRandomFactory(seed int64) Factory {
	return func(capacityPages int) Policy { return NewRandom(seed) }
}

// Name implements Policy.
func (r *Random) Name() string { return "Random" }

// Reseed implements Reseedable: it replaces the RNG with a fresh one seeded
// from seed, so a run option can override the construction-time seed.
func (r *Random) Reseed(seed int64) { r.rng = rand.New(rand.NewSource(seed)) }

// OnWalkHit implements Policy: random ignores reference history.
func (r *Random) OnWalkHit(p addrspace.PageID, seq int) {}

// OnFault implements Policy.
func (r *Random) OnFault(p addrspace.PageID, seq int) {}

// OnMapped implements Policy: track the resident set.
func (r *Random) OnMapped(p addrspace.PageID, seq int) {
	r.pos[p] = len(r.pages)
	r.pages = append(r.pages, p)
}

// SelectVictim implements Policy: uniform over resident pages.
func (r *Random) SelectVictim() addrspace.PageID {
	if len(r.pages) == 0 {
		panic("policy: Random.SelectVictim with no resident pages")
	}
	return r.pages[r.rng.Intn(len(r.pages))]
}

// OnEvicted implements Policy: swap-remove from the resident slice.
func (r *Random) OnEvicted(p addrspace.PageID) {
	i, ok := r.pos[p]
	if !ok {
		return
	}
	last := len(r.pages) - 1
	r.pages[i] = r.pages[last]
	r.pos[r.pages[i]] = i
	r.pages = r.pages[:last]
	delete(r.pos, p)
}

// Len returns the number of tracked resident pages.
func (r *Random) Len() int { return len(r.pages) }

// LFU evicts the least-frequently-used resident page (ties broken by least
// recency). The paper's related-work section observes that frequency alone
// is not enough for unified memory; LFU is here to demonstrate that.
type LFU struct {
	counts map[addrspace.PageID]uint64
	chain  *recencyList // recency order for tie-breaks; head = LRU
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{counts: make(map[addrspace.PageID]uint64), chain: newRecencyList()}
}

// NewLFUFactory adapts NewLFU to the Factory signature.
func NewLFUFactory(capacityPages int) Policy { return NewLFU() }

// Name implements Policy.
func (l *LFU) Name() string { return "LFU" }

// OnWalkHit implements Policy.
func (l *LFU) OnWalkHit(p addrspace.PageID, seq int) {
	if l.chain.contains(p) {
		l.counts[p]++
		l.chain.touch(p)
	}
}

// OnFault implements Policy.
func (l *LFU) OnFault(p addrspace.PageID, seq int) {}

// OnMapped implements Policy.
func (l *LFU) OnMapped(p addrspace.PageID, seq int) {
	l.counts[p] = 1
	l.chain.pushMRU(p)
}

// SelectVictim implements Policy: minimum count, least recent among ties.
// O(resident) scan — LFU is a reference baseline, not a production policy.
func (l *LFU) SelectVictim() addrspace.PageID {
	var victim addrspace.PageID
	best := uint64(0)
	found := false
	for n := l.chain.head; n != nil; n = n.next {
		c := l.counts[n.page]
		if !found || c < best {
			victim, best, found = n.page, c, true
		}
	}
	if !found {
		panic("policy: LFU.SelectVictim with no resident pages")
	}
	return victim
}

// OnEvicted implements Policy.
func (l *LFU) OnEvicted(p addrspace.PageID) {
	l.chain.remove(p)
	delete(l.counts, p)
}

// Package policy defines the eviction-policy contract of the UVM driver and
// implements the paper's comparison policies: LRU, Random, RRIP (with the
// paper's delay-field enhancement), CLOCK-Pro (fixed m_c), and the offline
// "Ideal" policy modelled on Belady's MIN. FIFO and LFU are included as
// additional reference points (the paper discusses LFU in related work).
//
// Visibility model (paper §IV-A): an eviction policy lives in the GPU driver
// and observes the page-walk-level reference stream — page faults and, for
// the paper's "ideal model" baselines, page-walk hits in exact reference
// order. References absorbed by the TLBs are invisible to every policy.
package policy

import "hpe/internal/addrspace"

// Policy is the eviction-policy contract. The UVM driver calls the methods
// in this order for each walk-level event:
//
//   - walk hit on resident page  → OnWalkHit
//   - page fault                 → OnFault, then (after any evictions and
//     the page is mapped) OnMapped
//   - eviction                   → SelectVictim, then OnEvicted once the
//     driver has unmapped the page
//
// seq is the canonical trace position of the triggering access; policies
// that don't need it ignore it. Implementations are single-goroutine (the
// driver serialises faults) and must not retain the slices they are passed.
type Policy interface {
	// Name identifies the policy in reports ("LRU", "RRIP", ...).
	Name() string
	// OnWalkHit records a page-walk hit on a resident page.
	OnWalkHit(p addrspace.PageID, seq int)
	// OnFault records a page fault on a non-resident page.
	OnFault(p addrspace.PageID, seq int)
	// OnMapped tells the policy the faulted page is now resident.
	OnMapped(p addrspace.PageID, seq int)
	// SelectVictim returns a currently-resident page to evict. It is called
	// only when at least one page is resident.
	SelectVictim() addrspace.PageID
	// OnEvicted tells the policy the page has been unmapped.
	OnEvicted(p addrspace.PageID)
}

// Factory constructs a fresh policy instance for one simulation run.
// capacityPages is the device-memory capacity.
type Factory func(capacityPages int) Policy

// Reseedable is implemented by randomised policies (Random) whose RNG can be
// re-seeded after construction — how the facade's WithSeed run option reaches
// an already-built policy.
type Reseedable interface {
	Reseed(seed int64)
}

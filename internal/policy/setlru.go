package policy

import (
	"math/bits"

	"hpe/internal/addrspace"
)

// SetLRU is an ablation policy, not part of the paper's comparison set: LRU
// managed at page-set granularity, with none of HPE's partitions,
// classification, or dynamic adjustment. A touch to any page refreshes the
// whole set; the victim is the LRU set's lowest-addressed resident page,
// drained one page per eviction exactly as HPE drains its victims.
//
// Comparing SetLRU against page-level LRU and against HPE separates the two
// ingredients of HPE's win: how much comes merely from coarser (set-level)
// recency, and how much from the old/middle/new machinery on top.
type SetLRU struct {
	geometry addrspace.Geometry
	chain    *recencyList // of set-ids encoded as PageID keys; head = LRU
	resident map[addrspace.SetID]uint32
}

// NewSetLRU returns a set-granularity LRU over the given geometry.
func NewSetLRU(g addrspace.Geometry) *SetLRU {
	return &SetLRU{
		geometry: g,
		chain:    newRecencyList(),
		resident: make(map[addrspace.SetID]uint32),
	}
}

// NewSetLRUFactory adapts NewSetLRU (default geometry) to Factory.
func NewSetLRUFactory(capacityPages int) Policy {
	return NewSetLRU(addrspace.DefaultGeometry())
}

// Name implements Policy.
func (s *SetLRU) Name() string { return "SetLRU" }

// key encodes a SetID as the recencyList's PageID key space.
func key(id addrspace.SetID) addrspace.PageID { return addrspace.PageID(id) }

func (s *SetLRU) touch(id addrspace.SetID) {
	if !s.chain.touch(key(id)) {
		s.chain.pushMRU(key(id))
	}
}

// OnWalkHit implements Policy: refresh the whole set.
func (s *SetLRU) OnWalkHit(p addrspace.PageID, seq int) {
	id := s.geometry.SetOf(p)
	if _, ok := s.resident[id]; ok {
		s.touch(id)
	}
}

// OnFault implements Policy: faults refresh recency too.
func (s *SetLRU) OnFault(p addrspace.PageID, seq int) {
	s.touch(s.geometry.SetOf(p))
}

// OnMapped implements Policy: mark the page resident in its set.
func (s *SetLRU) OnMapped(p addrspace.PageID, seq int) {
	id := s.geometry.SetOf(p)
	s.resident[id] |= 1 << uint(s.geometry.Offset(p))
	s.touch(id)
}

// SelectVictim implements Policy: the LRU set's lowest resident page.
func (s *SetLRU) SelectVictim() addrspace.PageID {
	for n := s.chain.head; n != nil; n = n.next {
		id := addrspace.SetID(n.page)
		if mask := s.resident[id]; mask != 0 {
			return s.geometry.PageAt(id, bits.TrailingZeros32(mask))
		}
	}
	panic("policy: SetLRU.SelectVictim with no resident pages")
}

// OnEvicted implements Policy: clear the page; drop the set when drained.
func (s *SetLRU) OnEvicted(p addrspace.PageID) {
	id := s.geometry.SetOf(p)
	mask, ok := s.resident[id]
	if !ok {
		return
	}
	mask &^= 1 << uint(s.geometry.Offset(p))
	if mask == 0 {
		delete(s.resident, id)
		s.chain.remove(key(id))
		return
	}
	s.resident[id] = mask
}

// Sets returns the number of tracked sets (for tests).
func (s *SetLRU) Sets() int { return len(s.resident) }

package policy

import "hpe/internal/addrspace"

// Clock is the classic CLOCK algorithm — the one-bit LRU approximation the
// paper's related-work section names as what real kernels deploy instead of
// true LRU. A hand sweeps the resident ring; referenced pages get a second
// chance (bit cleared), unreferenced pages are victims. It inherits LRU's
// thrashing pathology, which is exactly why the paper discusses CLOCK-Pro.
type Clock struct {
	ring  []clockEntry
	index map[addrspace.PageID]int
	free  []int
	hand  int
}

type clockEntry struct {
	page  addrspace.PageID
	ref   bool
	valid bool
}

// NewClock returns an empty CLOCK policy.
func NewClock() *Clock {
	return &Clock{index: make(map[addrspace.PageID]int)}
}

// NewClockFactory adapts NewClock to the Factory signature.
func NewClockFactory(capacityPages int) Policy { return NewClock() }

// Name implements Policy.
func (c *Clock) Name() string { return "CLOCK" }

// OnWalkHit implements Policy: set the reference bit.
func (c *Clock) OnWalkHit(p addrspace.PageID, seq int) {
	if i, ok := c.index[p]; ok {
		c.ring[i].ref = true
	}
}

// OnFault implements Policy.
func (c *Clock) OnFault(p addrspace.PageID, seq int) {}

// OnMapped implements Policy: insert with the reference bit set (it is being
// used right now).
func (c *Clock) OnMapped(p addrspace.PageID, seq int) {
	e := clockEntry{page: p, ref: true, valid: true}
	if n := len(c.free); n > 0 {
		i := c.free[n-1]
		c.free = c.free[:n-1]
		c.ring[i] = e
		c.index[p] = i
		return
	}
	c.index[p] = len(c.ring)
	c.ring = append(c.ring, e)
}

// SelectVictim implements Policy: sweep the hand, granting second chances.
func (c *Clock) SelectVictim() addrspace.PageID {
	if len(c.index) == 0 {
		panic("policy: CLOCK.SelectVictim with no resident pages")
	}
	n := len(c.ring)
	// At most two revolutions: the first may clear every bit, the second
	// must find a victim.
	for sweep := 0; sweep < 2*n+1; sweep++ {
		e := &c.ring[c.hand%n]
		i := c.hand % n
		c.hand = (c.hand + 1) % n
		if !e.valid {
			continue
		}
		if e.ref {
			e.ref = false
			continue
		}
		_ = i
		return e.page
	}
	panic("policy: CLOCK hand failed to find a victim")
}

// OnEvicted implements Policy.
func (c *Clock) OnEvicted(p addrspace.PageID) {
	if i, ok := c.index[p]; ok {
		c.ring[i].valid = false
		c.free = append(c.free, i)
		delete(c.index, p)
	}
}

// Len returns the number of tracked resident pages.
func (c *Clock) Len() int { return len(c.index) }

// NRU is Not-Recently-Used: evict any page whose reference bit is clear,
// scanning in arrival order; when every page is referenced, clear all bits
// and take the oldest. (The classical scheme also consults a dirty bit; the
// simulator has no write tracking, so this is the reference-bit-only
// variant.) Like CLOCK, it approximates LRU and shares its weaknesses.
type NRU struct {
	chain *recencyList // arrival order: head = oldest
	ref   map[addrspace.PageID]bool
}

// NewNRU returns an empty NRU policy.
func NewNRU() *NRU {
	return &NRU{chain: newRecencyList(), ref: make(map[addrspace.PageID]bool)}
}

// NewNRUFactory adapts NewNRU to the Factory signature.
func NewNRUFactory(capacityPages int) Policy { return NewNRU() }

// Name implements Policy.
func (n *NRU) Name() string { return "NRU" }

// OnWalkHit implements Policy.
func (n *NRU) OnWalkHit(p addrspace.PageID, seq int) {
	if n.chain.contains(p) {
		n.ref[p] = true
	}
}

// OnFault implements Policy.
func (n *NRU) OnFault(p addrspace.PageID, seq int) {}

// OnMapped implements Policy.
func (n *NRU) OnMapped(p addrspace.PageID, seq int) {
	n.chain.pushMRU(p)
	n.ref[p] = true
}

// SelectVictim implements Policy.
func (n *NRU) SelectVictim() addrspace.PageID {
	if n.chain.len() == 0 {
		panic("policy: NRU.SelectVictim with no resident pages")
	}
	for node := n.chain.head; node != nil; node = node.next {
		if !n.ref[node.page] {
			return node.page
		}
	}
	// Everyone was recently used: clear the epoch and take the oldest.
	for node := n.chain.head; node != nil; node = node.next {
		n.ref[node.page] = false
	}
	return n.chain.head.page
}

// OnEvicted implements Policy.
func (n *NRU) OnEvicted(p addrspace.PageID) {
	n.chain.remove(p)
	delete(n.ref, p)
}

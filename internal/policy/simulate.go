package policy

import (
	"context"
	"fmt"

	"hpe/internal/addrspace"
	"hpe/internal/probe"
	"hpe/internal/sim"
	"hpe/internal/trace"
)

// ReplayResult summarises a timing-free replay of a reference string
// against a policy: the demand-paging behaviour without the GPU's TLBs,
// warps, or latencies. Eviction-count comparisons (the paper's Figs. 3, 11,
// 12b) depend only on this level of the model; the full simulator in
// internal/gpu adds timing and TLB filtering on top.
type ReplayResult struct {
	Policy    string
	Refs      int
	Faults    uint64
	Evictions uint64
	Hits      uint64
	// Tenants attributes the counters per tenant when the trace carries
	// tenant annotations (a colocated workload-v2 capture); nil otherwise.
	Tenants []TenantReplay `json:",omitempty"`
	// Cancelled reports that the replay's context was cancelled before the
	// reference string drained; counters cover the replayed prefix only.
	Cancelled bool
}

// TenantReplay is the per-tenant slice of a ReplayResult: activity on the
// tenant's page range, with evictions charged to the victim's owner.
type TenantReplay struct {
	Name      string
	Faults    uint64
	Evictions uint64
	Hits      uint64
}

// FaultRate returns faults per reference.
func (r ReplayResult) FaultRate() float64 {
	if r.Refs == 0 {
		return 0
	}
	return float64(r.Faults) / float64(r.Refs)
}

// String renders the result as a one-line report.
func (r ReplayResult) String() string {
	return fmt.Sprintf("%-10s refs=%-8d faults=%-7d evictions=%-7d hits=%d",
		r.Policy, r.Refs, r.Faults, r.Evictions, r.Hits)
}

// Replay runs every reference of tr through the policy against a memory of
// capacityPages, evicting on demand. Every reference is visible to the
// policy (the paper's "ideal model" feed). The sequence number passed to the
// policy is the trace position.
func Replay(tr *trace.Trace, p Policy, capacityPages int) ReplayResult {
	return ReplayProbed(tr, p, capacityPages, nil)
}

// ReplayProbed is Replay with an optional instrumentation probe. Replay is
// timing-free, so events carry the trace position as their cycle (At =
// sim.Cycle(seq)): inter-arrival histograms then measure reference distance
// rather than simulated time. A nil probe keeps the exact Replay fast path.
func ReplayProbed(tr *trace.Trace, p Policy, capacityPages int, pr probe.Probe) ReplayResult {
	//lint:ignore hpelint/ctxflow context-free compatibility wrapper by design; callers needing cancellation use ReplayContext
	return ReplayContext(context.Background(), tr, p, capacityPages, pr)
}

// cancelPollRefs is how many references replay between context polls in
// ReplayContext — same rationale as the event engine's poll interval.
const cancelPollRefs = 4096

// ReplayContext is ReplayProbed tied to a context: the replay loop polls
// ctx.Done() every cancelPollRefs references and stops early when it closes,
// marking the result Cancelled. A never-cancellable context (Background)
// keeps the exact unpolled fast path.
func ReplayContext(ctx context.Context, tr *trace.Trace, p Policy, capacityPages int, pr probe.Probe) ReplayResult {
	if capacityPages <= 0 {
		panic(fmt.Sprintf("policy: Replay capacity %d must be positive", capacityPages))
	}
	done := ctx.Done()
	resident := make(map[addrspace.PageID]struct{}, capacityPages)
	res := ReplayResult{Policy: p.Name(), Refs: tr.Len()}
	// Per-tenant attribution, only for annotated traces: one nil check per
	// site, same contract as the probe, so plain replays keep the fast path.
	var tens []TenantReplay
	if len(tr.Tenants) > 0 {
		tens = make([]TenantReplay, len(tr.Tenants))
		for i, t := range tr.Tenants {
			tens[i].Name = t.Name
		}
		res.Tenants = tens
	}
	for seq, page := range tr.Refs {
		if done != nil && seq%cancelPollRefs == cancelPollRefs-1 {
			select {
			case <-done:
				res.Cancelled = true
				return res
			default:
			}
		}
		if _, ok := resident[page]; ok {
			res.Hits++
			if tens != nil {
				if i := tr.TenantOf(page); i >= 0 {
					tens[i].Hits++
				}
			}
			p.OnWalkHit(page, seq)
			if pr != nil {
				pr.Emit(probe.WalkHit(sim.Cycle(seq), 0, page, seq))
			}
			continue
		}
		res.Faults++
		if tens != nil {
			if i := tr.TenantOf(page); i >= 0 {
				tens[i].Faults++
			}
		}
		p.OnFault(page, seq)
		if pr != nil {
			pr.Emit(probe.FaultBegin(sim.Cycle(seq), page, seq, 0))
		}
		if len(resident) >= capacityPages {
			victim := p.SelectVictim()
			if _, ok := resident[victim]; !ok {
				panic(fmt.Sprintf("policy: %s selected non-resident victim %v", p.Name(), victim))
			}
			delete(resident, victim)
			p.OnEvicted(victim)
			res.Evictions++
			if tens != nil {
				if i := tr.TenantOf(victim); i >= 0 {
					tens[i].Evictions++
				}
			}
			if pr != nil {
				pr.Emit(probe.Eviction(sim.Cycle(seq), victim, page))
			}
		}
		resident[page] = struct{}{}
		p.OnMapped(page, seq)
		if pr != nil {
			pr.Emit(probe.FaultEnd(sim.Cycle(seq), page, seq, 0, false))
		}
	}
	return res
}

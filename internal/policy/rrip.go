package policy

import (
	"fmt"

	"hpe/internal/addrspace"
)

// RRIPConfig parameterises the enhanced RRIP policy exactly as the paper
// configures it (§V-B "Compared to Other Policies").
type RRIPConfig struct {
	// MBits is the width of the re-reference prediction value register.
	// 2 bits gives RRPV ∈ [0,3].
	MBits uint
	// InsertDistant inserts new pages with the distant re-reference
	// prediction (RRPV = max). The paper enables this for Type II
	// applications; all others insert with the long prediction (max-1).
	InsertDistant bool
	// DelayThreshold is the paper's anti-instant-thrashing enhancement: a
	// page is only an eviction candidate once at least this many global page
	// faults have occurred since its insertion. 128 for Type II apps
	// (together with distant insertion), 0 otherwise.
	DelayThreshold uint64
}

// DefaultRRIPConfig returns the paper's configuration for non-Type-II
// applications: long insertion, no delay requirement.
func DefaultRRIPConfig() RRIPConfig {
	return RRIPConfig{MBits: 2, InsertDistant: false, DelayThreshold: 0}
}

// ThrashingRRIPConfig returns the paper's configuration for Type II
// applications: distant insertion and a delay threshold of 128 faults.
func ThrashingRRIPConfig() RRIPConfig {
	return RRIPConfig{MBits: 2, InsertDistant: true, DelayThreshold: 128}
}

type rripEntry struct {
	page  addrspace.PageID
	rrpv  uint8
	delay uint64 // global page-fault number at insertion
	valid bool
}

// RRIP is the paper's enhanced RRIP-FP (frequency priority) policy: an M-bit
// RRPV per page, decremented on hit; eviction scans CLOCK-style for a page
// with the distant prediction whose delay requirement is met, aging all
// pages when none qualifies.
type RRIP struct {
	cfg        RRIPConfig
	maxRRPV    uint8
	ring       []rripEntry
	index      map[addrspace.PageID]int
	freeSlots  []int
	faultCount uint64
}

// NewRRIP returns an empty RRIP policy with the given configuration.
func NewRRIP(cfg RRIPConfig) *RRIP {
	if cfg.MBits == 0 || cfg.MBits > 8 {
		panic(fmt.Sprintf("policy: RRIP MBits %d out of range [1,8]", cfg.MBits))
	}
	return &RRIP{
		cfg:     cfg,
		maxRRPV: uint8(1<<cfg.MBits - 1),
		index:   make(map[addrspace.PageID]int),
	}
}

// NewRRIPFactory returns a Factory producing RRIP policies with cfg.
func NewRRIPFactory(cfg RRIPConfig) Factory {
	return func(capacityPages int) Policy { return NewRRIP(cfg) }
}

// Name implements Policy.
func (r *RRIP) Name() string { return "RRIP" }

// OnWalkHit implements Policy: frequency priority decrements RRPV.
func (r *RRIP) OnWalkHit(p addrspace.PageID, seq int) {
	if i, ok := r.index[p]; ok && r.ring[i].rrpv > 0 {
		r.ring[i].rrpv--
	}
}

// OnFault implements Policy: advance the global fault counter.
func (r *RRIP) OnFault(p addrspace.PageID, seq int) { r.faultCount++ }

// OnMapped implements Policy: insert with the configured prediction.
func (r *RRIP) OnMapped(p addrspace.PageID, seq int) {
	rrpv := r.maxRRPV - 1
	if r.cfg.InsertDistant {
		rrpv = r.maxRRPV
	}
	e := rripEntry{page: p, rrpv: rrpv, delay: r.faultCount, valid: true}
	// Reuse a freed slot when one exists; otherwise append.
	if n := len(r.freeSlots); n > 0 {
		i := r.freeSlots[n-1]
		r.freeSlots = r.freeSlots[:n-1]
		r.ring[i] = e
		r.index[p] = i
		return
	}
	r.index[p] = len(r.ring)
	r.ring = append(r.ring, e)
}

// eligible reports whether the entry meets the delay requirement: the margin
// between the current fault number and the page's delay field is at least
// the threshold.
func (r *RRIP) eligible(e *rripEntry) bool {
	return r.faultCount-e.delay >= r.cfg.DelayThreshold
}

// SelectVictim implements Policy. Like SRRIP, the scan starts from slot 0
// every time (not from a persistent hand) and takes the first valid entry
// with RRPV == max that meets the delay requirement; if a full sweep finds
// none, every RRPV is incremented (aging) and the scan repeats. If aging
// alone cannot produce a candidate (every page is too young), the delay
// requirement is relaxed — the driver must evict something.
//
// The fixed-start scan matters: together with slot reuse it concentrates
// the churn in low slots, which is what lets the delay field retain part of
// the working set on thrashing patterns instead of degenerating to LRU.
func (r *RRIP) SelectVictim() addrspace.PageID {
	if len(r.index) == 0 {
		panic("policy: RRIP.SelectVictim with no resident pages")
	}
	for round := uint8(0); round <= r.maxRRPV; round++ {
		if p, ok := r.scan(true); ok {
			return p
		}
		// Age: increment every RRPV below max.
		for i := range r.ring {
			if r.ring[i].valid && r.ring[i].rrpv < r.maxRRPV {
				r.ring[i].rrpv++
			}
		}
	}
	// All RRPVs are max but nothing satisfies the delay requirement: relax it.
	if p, ok := r.scan(false); ok {
		return p
	}
	panic("policy: RRIP.SelectVictim scan failed despite resident pages")
}

// scan sweeps the ring once from slot 0 looking for a distant-prediction
// entry; withDelay additionally requires the delay margin.
func (r *RRIP) scan(withDelay bool) (addrspace.PageID, bool) {
	for i := range r.ring {
		e := &r.ring[i]
		if !e.valid || e.rrpv != r.maxRRPV {
			continue
		}
		if withDelay && !r.eligible(e) {
			continue
		}
		return e.page, true
	}
	return 0, false
}

// OnEvicted implements Policy.
func (r *RRIP) OnEvicted(p addrspace.PageID) {
	if i, ok := r.index[p]; ok {
		r.ring[i].valid = false
		r.freeSlots = append(r.freeSlots, i)
		delete(r.index, p)
	}
}

// Len returns the number of tracked resident pages.
func (r *RRIP) Len() int { return len(r.index) }

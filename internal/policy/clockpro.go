package policy

import (
	"fmt"

	"hpe/internal/addrspace"
)

// pageState classifies a CLOCK-Pro list entry.
type pageState uint8

const (
	stateHot pageState = iota
	stateColdResident
	stateColdNonResident // evicted but still in its test period
)

type cpNode struct {
	page       addrspace.PageID
	state      pageState
	ref        bool
	inTest     bool
	prev, next *cpNode
}

// ClockPro implements the CLOCK-Pro replacement algorithm (Jiang, Chen,
// Zhang; USENIX ATC 2005), adapted to UVM page eviction the way the paper
// configures it: the memory allocation for cold pages m_c is fixed at 128
// pages "because this value can alleviate instant thrashing" (§V-B), so the
// original's adaptive m_c tuning is disabled.
//
// All page metadata (resident hot, resident cold, and non-resident cold
// pages in their test period) lives on one circular list; three hands sweep
// it: HAND_cold finds eviction victims, HAND_hot demotes hot pages, and
// HAND_test expires test periods to bound non-resident metadata.
type ClockPro struct {
	capacity int // m: total resident pages
	coldTgt  int // m_c: fixed target for resident cold pages

	index  map[addrspace.PageID]*cpNode
	oldest *cpNode // ring anchor: the oldest entry; .next walks old → new

	handHot  *cpNode
	handCold *cpNode
	handTest *cpNode

	nHot     int
	nColdRes int
	nNonRes  int
}

// DefaultColdTarget is the paper's fixed m_c.
const DefaultColdTarget = 128

// NewClockPro returns a CLOCK-Pro policy for a memory of capacityPages with
// the given fixed cold-page allocation (use DefaultColdTarget for the
// paper's setting). coldTarget is clamped to [1, capacityPages].
func NewClockPro(capacityPages, coldTarget int) *ClockPro {
	if capacityPages <= 0 {
		panic(fmt.Sprintf("policy: ClockPro capacity %d must be positive", capacityPages))
	}
	if coldTarget < 1 {
		coldTarget = 1
	}
	if coldTarget > capacityPages {
		coldTarget = capacityPages
	}
	return &ClockPro{
		capacity: capacityPages,
		coldTgt:  coldTarget,
		index:    make(map[addrspace.PageID]*cpNode),
	}
}

// NewClockProFactory returns a Factory producing CLOCK-Pro with the paper's
// fixed m_c = 128.
func NewClockProFactory(capacityPages int) Policy {
	return NewClockPro(capacityPages, DefaultColdTarget)
}

// Name implements Policy.
func (c *ClockPro) Name() string { return "CLOCK-Pro" }

// --- circular list plumbing -------------------------------------------------

// insertNewest links n at the newest position (just before the oldest entry
// in .next order, i.e. the CLOCK list head).
func (c *ClockPro) insertNewest(n *cpNode) {
	if c.oldest == nil {
		n.prev, n.next = n, n
		c.oldest = n
		return
	}
	newest := c.oldest.prev
	n.next = c.oldest
	n.prev = newest
	newest.next = n
	c.oldest.prev = n
}

// unlinkNode removes n from the ring, repointing hands and head past it.
func (c *ClockPro) unlinkNode(n *cpNode) {
	c.repointPast(&c.handHot, n)
	c.repointPast(&c.handCold, n)
	c.repointPast(&c.handTest, n)
	c.repointPast(&c.oldest, n)
	if n.next == n {
		// Last node.
		n.prev, n.next = nil, nil
		return
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

// repointPast moves a hand (or the head) off n before it leaves the ring.
func (c *ClockPro) repointPast(h **cpNode, n *cpNode) {
	if *h != n {
		return
	}
	if n.next == n {
		*h = nil
	} else {
		*h = n.next
	}
}

func (c *ClockPro) removeEntry(n *cpNode) {
	switch n.state {
	case stateHot:
		c.nHot--
	case stateColdResident:
		c.nColdRes--
	case stateColdNonResident:
		c.nNonRes--
	}
	c.unlinkNode(n)
	delete(c.index, n.page)
}

// --- the three hands ---------------------------------------------------------

// runHandTest terminates the test period of the cold page under HAND_test,
// removing non-resident entries, then advances.
func (c *ClockPro) runHandTest() {
	if c.handTest == nil {
		c.handTest = c.oldest
	}
	for sweep := 0; c.handTest != nil && sweep < 2*len(c.index)+2; sweep++ {
		n := c.handTest
		c.handTest = n.next
		if n.state == stateColdNonResident {
			c.removeEntry(n)
			return
		}
		if n.state == stateColdResident && n.inTest {
			n.inTest = false
			return
		}
	}
}

// runHandHot demotes one hot page to cold (clearing referenced hot pages as
// it passes) and expires test periods of cold pages it sweeps over.
func (c *ClockPro) runHandHot() {
	if c.handHot == nil {
		c.handHot = c.oldest
	}
	limit := 2*len(c.index) + 2
	for sweep := 0; c.handHot != nil && sweep < limit; sweep++ {
		n := c.handHot
		c.handHot = n.next
		switch n.state {
		case stateHot:
			if n.ref {
				n.ref = false
				continue
			}
			n.state = stateColdResident
			n.inTest = false
			c.nHot--
			c.nColdRes++
			return
		case stateColdNonResident:
			c.removeEntry(n)
		case stateColdResident:
			if n.inTest {
				n.inTest = false
			}
		}
	}
}

// victimSearch runs HAND_cold until it identifies a resident cold page with
// a clear reference bit, performing promotions and rotations on the way.
// It does not unmap the page — the driver does that and then calls OnEvicted.
func (c *ClockPro) victimSearch() *cpNode {
	// Ensure some resident cold page exists; demote hot pages if not.
	for c.nColdRes == 0 && c.nHot > 0 {
		c.runHandHot()
	}
	if c.handCold == nil {
		c.handCold = c.oldest
	}
	limit := 4*len(c.index) + 4
	for sweep := 0; sweep < limit; sweep++ {
		n := c.handCold
		c.handCold = n.next
		if n.state != stateColdResident {
			continue
		}
		if n.ref {
			if n.inTest {
				// Re-referenced within its test period: promote to hot.
				n.ref = false
				n.inTest = false
				n.state = stateHot
				c.nColdRes--
				c.nHot++
				if c.nHot > c.capacity-c.coldTgt {
					c.runHandHot()
				}
			} else {
				// Re-referenced after test expiry: stay cold, restart test.
				n.ref = false
				n.inTest = true
				c.unlinkNode(n)
				c.insertNewest(n)
			}
			// Promotion may have emptied the cold set.
			for c.nColdRes == 0 && c.nHot > 0 {
				c.runHandHot()
			}
			continue
		}
		return n
	}
	panic("policy: ClockPro victim search did not terminate")
}

// --- Policy interface --------------------------------------------------------

// OnWalkHit implements Policy: set the reference bit.
func (c *ClockPro) OnWalkHit(p addrspace.PageID, seq int) {
	if n, ok := c.index[p]; ok && n.state != stateColdNonResident {
		n.ref = true
	}
}

// OnFault implements Policy (handled in OnMapped).
func (c *ClockPro) OnFault(p addrspace.PageID, seq int) {}

// OnMapped implements Policy: a fault on a page still in its test period
// proves a short reuse distance — insert it hot; otherwise insert it cold
// and start its test period.
func (c *ClockPro) OnMapped(p addrspace.PageID, seq int) {
	if n, ok := c.index[p]; ok {
		if n.state != stateColdNonResident {
			panic(fmt.Sprintf("policy: ClockPro mapping already-resident %v", p))
		}
		// Short reuse distance: promote.
		c.removeEntry(n)
		//lint:ignore hpelint/hotalloc one node per mapped page; mapping happens on the priced far-fault path
		hot := &cpNode{page: p, state: stateHot}
		c.insertNewest(hot)
		c.index[p] = hot
		c.nHot++
		for c.nHot > c.capacity-c.coldTgt {
			before := c.nHot
			c.runHandHot()
			if c.nHot == before {
				break
			}
		}
		return
	}
	//lint:ignore hpelint/hotalloc one node per mapped page; mapping happens on the priced far-fault path
	n := &cpNode{page: p, state: stateColdResident, inTest: true}
	c.insertNewest(n)
	c.index[p] = n
	c.nColdRes++
	// Bound non-resident metadata at the memory size.
	for c.nNonRes > c.capacity {
		before := c.nNonRes
		c.runHandTest()
		if c.nNonRes == before {
			break
		}
	}
}

// SelectVictim implements Policy.
func (c *ClockPro) SelectVictim() addrspace.PageID {
	if c.nColdRes+c.nHot == 0 {
		panic("policy: ClockPro.SelectVictim with no resident pages")
	}
	return c.victimSearch().page
}

// OnEvicted implements Policy: the page becomes non-resident; if its test
// period is running, keep the metadata so a quick refault promotes it.
func (c *ClockPro) OnEvicted(p addrspace.PageID) {
	n, ok := c.index[p]
	if !ok || n.state == stateColdNonResident {
		return
	}
	if n.state == stateHot {
		// The driver may evict a page the policy would not have chosen (it
		// always honours SelectVictim, so this is defensive).
		c.nHot--
		c.nColdRes++
		n.state = stateColdResident
	}
	if n.inTest {
		n.state = stateColdNonResident
		n.ref = false
		c.nColdRes--
		c.nNonRes++
		return
	}
	c.removeEntry(n)
}

// Counts reports (hot, resident-cold, non-resident) entry counts, for tests.
func (c *ClockPro) Counts() (hot, coldRes, nonRes int) {
	return c.nHot, c.nColdRes, c.nNonRes
}

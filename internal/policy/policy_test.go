package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

func refs(ids ...uint64) []addrspace.PageID {
	out := make([]addrspace.PageID, len(ids))
	for i, id := range ids {
		out[i] = addrspace.PageID(id)
	}
	return out
}

func cyclicTrace(pages, passes int) *trace.Trace {
	var r []addrspace.PageID
	for p := 0; p < passes; p++ {
		for i := 0; i < pages; i++ {
			r = append(r, addrspace.PageID(i))
		}
	}
	return trace.New("cyclic", r)
}

func randomTrace(n, footprint int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	r := make([]addrspace.PageID, n)
	for i := range r {
		r[i] = addrspace.PageID(rng.Intn(footprint))
	}
	return trace.New("random", r)
}

// --- LRU ---------------------------------------------------------------------

func TestLRUEvictsLeastRecent(t *testing.T) {
	l := NewLRU()
	for i, p := range refs(1, 2, 3) {
		l.OnMapped(p, i)
	}
	l.OnWalkHit(1, 3) // 1 becomes MRU; LRU order now 2,3,1
	if v := l.SelectVictim(); v != 2 {
		t.Fatalf("victim = %v, want 2", v)
	}
	l.OnEvicted(2)
	if v := l.SelectVictim(); v != 3 {
		t.Fatalf("victim = %v, want 3", v)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLRUDoubleInsertPanics(t *testing.T) {
	l := NewLRU()
	l.OnMapped(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("double OnMapped did not panic")
		}
	}()
	l.OnMapped(1, 1)
}

func TestLRUEmptyVictimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SelectVictim on empty LRU did not panic")
		}
	}()
	NewLRU().SelectVictim()
}

func TestLRUThrashesOnCyclicPattern(t *testing.T) {
	// The canonical LRU pathology (paper Type II): k pages cycled with
	// capacity k-1 faults on every reference after warmup.
	tr := cyclicTrace(10, 5)
	res := Replay(tr, NewLRU(), 9)
	if res.Faults != uint64(tr.Len()) {
		t.Fatalf("LRU faults = %d, want %d (every ref)", res.Faults, tr.Len())
	}
}

// --- FIFO --------------------------------------------------------------------

func TestFIFOIgnoresHits(t *testing.T) {
	f := NewFIFO()
	f.OnMapped(1, 0)
	f.OnMapped(2, 1)
	f.OnWalkHit(1, 2) // must not refresh
	if v := f.SelectVictim(); v != 1 {
		t.Fatalf("FIFO victim = %v, want 1", v)
	}
}

// --- Random ------------------------------------------------------------------

func TestRandomDeterministicWithSeed(t *testing.T) {
	tr := randomTrace(5000, 100, 1)
	a := Replay(tr, NewRandom(7), 50)
	b := Replay(tr, NewRandom(7), 50)
	if a.Faults != b.Faults || a.Evictions != b.Evictions {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	c := Replay(tr, NewRandom(8), 50)
	if a.Faults == c.Faults {
		t.Log("different seeds produced identical fault counts (possible but unlikely)")
	}
}

func TestRandomSelectsResident(t *testing.T) {
	r := NewRandom(1)
	for i := 0; i < 10; i++ {
		r.OnMapped(addrspace.PageID(i), i)
	}
	r.OnEvicted(3)
	r.OnEvicted(7)
	for i := 0; i < 100; i++ {
		v := r.SelectVictim()
		if v == 3 || v == 7 {
			t.Fatalf("Random selected evicted page %v", v)
		}
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
}

// --- LFU ---------------------------------------------------------------------

func TestLFUEvictsLeastFrequent(t *testing.T) {
	l := NewLFU()
	l.OnMapped(1, 0)
	l.OnMapped(2, 1)
	l.OnMapped(3, 2)
	l.OnWalkHit(1, 3)
	l.OnWalkHit(1, 4)
	l.OnWalkHit(3, 5)
	// Counts: 1→3, 2→1, 3→2.
	if v := l.SelectVictim(); v != 2 {
		t.Fatalf("LFU victim = %v, want 2", v)
	}
}

func TestLFUTieBreaksByRecency(t *testing.T) {
	l := NewLFU()
	l.OnMapped(1, 0)
	l.OnMapped(2, 1)
	// Both count 1; page 1 is older.
	if v := l.SelectVictim(); v != 1 {
		t.Fatalf("LFU tie-break victim = %v, want 1 (least recent)", v)
	}
}

// --- RRIP --------------------------------------------------------------------

func TestRRIPDistantInsertionEvictsNewcomersFirst(t *testing.T) {
	r := NewRRIP(RRIPConfig{MBits: 2, InsertDistant: true})
	r.OnMapped(1, 0)
	r.OnWalkHit(1, 1) // 1's RRPV drops to 2
	r.OnMapped(2, 2)  // 2 inserted distant (3)
	if v := r.SelectVictim(); v != 2 {
		t.Fatalf("victim = %v, want 2 (distant newcomer)", v)
	}
}

func TestRRIPAgingFindsVictim(t *testing.T) {
	r := NewRRIP(DefaultRRIPConfig()) // long insertion (RRPV 2)
	r.OnMapped(1, 0)
	r.OnMapped(2, 1)
	r.OnWalkHit(1, 2) // 1 → 1, 2 stays 2
	// No page at RRPV 3: aging must promote 2 to 3 first.
	if v := r.SelectVictim(); v != 2 {
		t.Fatalf("victim = %v, want 2", v)
	}
}

func TestRRIPDelayFieldBlocksYoungPages(t *testing.T) {
	r := NewRRIP(RRIPConfig{MBits: 2, InsertDistant: true, DelayThreshold: 2})
	r.OnFault(1, 0)
	r.OnMapped(1, 0) // delay field = 1 (after first fault)
	r.OnFault(2, 1)
	r.OnMapped(2, 1) // delay field = 2
	r.OnFault(3, 2)
	r.OnMapped(3, 2) // delay field = 3
	// faultCount = 3. Eligible: margin >= 2 → pages with delay <= 1 → page 1.
	if v := r.SelectVictim(); v != 1 {
		t.Fatalf("victim = %v, want 1 (only page old enough)", v)
	}
}

func TestRRIPDelayRelaxesWhenAllYoung(t *testing.T) {
	r := NewRRIP(RRIPConfig{MBits: 2, InsertDistant: true, DelayThreshold: 1000})
	r.OnFault(1, 0)
	r.OnMapped(1, 0)
	// Nothing meets the delay margin; policy must still yield a victim.
	if v := r.SelectVictim(); v != 1 {
		t.Fatalf("victim = %v, want 1", v)
	}
}

func TestRRIPSlotReuse(t *testing.T) {
	r := NewRRIP(DefaultRRIPConfig())
	for i := 0; i < 100; i++ {
		r.OnMapped(addrspace.PageID(i), i)
	}
	for i := 0; i < 50; i++ {
		r.OnEvicted(addrspace.PageID(i))
	}
	for i := 100; i < 150; i++ {
		r.OnMapped(addrspace.PageID(i), i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	if len(r.ring) != 100 {
		t.Fatalf("ring grew to %d despite free slots", len(r.ring))
	}
}

func TestRRIPBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MBits 0 did not panic")
		}
	}()
	NewRRIP(RRIPConfig{MBits: 0})
}

// --- CLOCK-Pro ---------------------------------------------------------------

func TestClockProColdInsertionAndEviction(t *testing.T) {
	c := NewClockPro(4, 2)
	for i := 0; i < 4; i++ {
		c.OnMapped(addrspace.PageID(i), i)
	}
	hot, cold, nonres := c.Counts()
	if hot != 0 || cold != 4 || nonres != 0 {
		t.Fatalf("counts = %d/%d/%d, want 0/4/0", hot, cold, nonres)
	}
	v := c.SelectVictim()
	c.OnEvicted(v)
	hot, cold, nonres = c.Counts()
	if cold != 3 || nonres != 1 {
		t.Fatalf("after evict: cold=%d nonres=%d, want 3,1 (test period keeps metadata)", cold, nonres)
	}
}

func TestClockProRefaultInTestPromotesToHot(t *testing.T) {
	c := NewClockPro(4, 2)
	c.OnMapped(1, 0)
	v := c.SelectVictim()
	if v != 1 {
		t.Fatalf("victim = %v", v)
	}
	c.OnEvicted(1)
	// Refault while still in test period → hot insertion.
	c.OnMapped(1, 1)
	hot, _, nonres := c.Counts()
	if hot != 1 || nonres != 0 {
		t.Fatalf("hot=%d nonres=%d, want 1,0", hot, nonres)
	}
}

func TestClockProReferencedColdPromotes(t *testing.T) {
	c := NewClockPro(4, 2)
	c.OnMapped(1, 0)
	c.OnMapped(2, 1)
	c.OnWalkHit(1, 2) // ref bit set while in test period
	v := c.SelectVictim()
	// Page 1 must be promoted, not evicted; victim must be 2.
	if v != 2 {
		t.Fatalf("victim = %v, want 2", v)
	}
	hot, _, _ := c.Counts()
	if hot != 1 {
		t.Fatalf("hot = %d, want 1 (page 1 promoted)", hot)
	}
}

func TestClockProNonResidentBounded(t *testing.T) {
	cap := 16
	c := NewClockPro(cap, 4)
	tr := randomTrace(20000, 400, 3)
	Replay(tr, c, cap)
	_, _, nonres := c.Counts()
	if nonres > cap+1 {
		t.Fatalf("non-resident metadata %d exceeds bound %d", nonres, cap)
	}
}

func TestClockProSurvivesWorkloads(t *testing.T) {
	// Smoke: several adversarial patterns must not panic and must produce
	// sane fault counts.
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
		cap  int
	}{
		{"cyclic", cyclicTrace(40, 10), 20},
		{"random", randomTrace(30000, 300, 9), 100},
		{"single", trace.New("one", refs(1, 1, 1, 1, 1)), 4},
	} {
		c := NewClockPro(tc.cap, DefaultColdTarget)
		res := Replay(tc.tr, c, tc.cap)
		if res.Faults == 0 || res.Faults > uint64(tc.tr.Len()) {
			t.Errorf("%s: faults = %d out of range", tc.name, res.Faults)
		}
	}
}

// --- Ideal (Belady MIN) -------------------------------------------------------

func TestIdealOnKnownString(t *testing.T) {
	// Classic example: with capacity 3, MIN on a,b,c,d,a,b,e,a,b,c,d,e
	// faults 7 times (a,b,c,d compulsory + e, c, d).
	tr := trace.New("belady", refs(1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5))
	res := Replay(tr, NewIdeal(trace.BuildFutureIndex(tr)), 3)
	if res.Faults != 7 {
		t.Fatalf("Ideal faults = %d, want 7", res.Faults)
	}
}

func TestIdealBeatsOrMatchesEveryPolicyOnEvictions(t *testing.T) {
	// Belady optimality (in fault count, full-visibility replay) against
	// every online policy on assorted traces.
	traces := []*trace.Trace{
		cyclicTrace(50, 6),
		randomTrace(20000, 200, 11),
		trace.New("mixed", append(cyclicTrace(30, 4).Refs, randomTrace(5000, 120, 5).Refs...)),
	}
	for _, tr := range traces {
		cap := tr.Footprint() * 3 / 4
		ideal := Replay(tr, NewIdeal(trace.BuildFutureIndex(tr)), cap)
		online := []Policy{NewLRU(), NewFIFO(), NewRandom(1), NewLFU(),
			NewRRIP(DefaultRRIPConfig()), NewClockPro(cap, DefaultColdTarget)}
		for _, p := range online {
			got := Replay(tr, p, cap)
			if got.Faults < ideal.Faults {
				t.Errorf("%s: %s faulted %d < Ideal %d — MIN optimality violated",
					tr.Name, p.Name(), got.Faults, ideal.Faults)
			}
		}
	}
}

func TestIdealKeepsWorkingSetOnCyclicPattern(t *testing.T) {
	// k pages cycled, capacity m: MIN faults k + (passes-1)*(k-m) —
	// dramatically less than LRU's passes*k.
	k, m, passes := 20, 15, 5
	tr := cyclicTrace(k, passes)
	res := Replay(tr, NewIdeal(trace.BuildFutureIndex(tr)), m)
	want := uint64(k + (passes-1)*(k-m))
	if res.Faults != want {
		t.Fatalf("Ideal faults = %d, want %d", res.Faults, want)
	}
	lru := Replay(tr, NewLRU(), m)
	if lru.Faults != uint64(k*passes) {
		t.Fatalf("LRU faults = %d, want %d", lru.Faults, k*passes)
	}
}

// --- cross-policy invariants ---------------------------------------------------

func TestReplayInvariants(t *testing.T) {
	tr := randomTrace(15000, 250, 21)
	cap := 100
	policies := []Policy{NewLRU(), NewFIFO(), NewRandom(3), NewLFU(),
		NewRRIP(DefaultRRIPConfig()), NewRRIP(ThrashingRRIPConfig()),
		NewClockPro(cap, DefaultColdTarget),
		NewIdeal(trace.BuildFutureIndex(tr))}
	for _, p := range policies {
		res := Replay(tr, p, cap)
		if res.Hits+res.Faults != uint64(tr.Len()) {
			t.Errorf("%s: hits+faults = %d, want %d", p.Name(), res.Hits+res.Faults, tr.Len())
		}
		if res.Evictions > res.Faults {
			t.Errorf("%s: evictions %d > faults %d", p.Name(), res.Evictions, res.Faults)
		}
		// Evictions = faults - capacity once memory is full.
		if want := res.Faults - uint64(cap); res.Evictions != want {
			t.Errorf("%s: evictions = %d, want %d", p.Name(), res.Evictions, want)
		}
	}
}

func TestReplayBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Replay with capacity 0 did not panic")
		}
	}()
	Replay(cyclicTrace(4, 1), NewLRU(), 0)
}

func BenchmarkReplayLRU(b *testing.B) {
	tr := randomTrace(100000, 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr, NewLRU(), 1500)
	}
}

func BenchmarkReplayIdeal(b *testing.B) {
	tr := randomTrace(100000, 2000, 1)
	fi := trace.BuildFutureIndex(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr, NewIdeal(fi), 1500)
	}
}

func BenchmarkReplayClockPro(b *testing.B) {
	tr := randomTrace(100000, 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr, NewClockPro(1500, DefaultColdTarget), 1500)
	}
}

// Property: recencyList behaves exactly like a model built from a slice —
// same membership, same length, and lru() always returns the front.
func TestRecencyListModelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		l := newRecencyList()
		var model []addrspace.PageID // front = LRU
		contains := func(p addrspace.PageID) int {
			for i, q := range model {
				if q == p {
					return i
				}
			}
			return -1
		}
		for _, op := range ops {
			p := addrspace.PageID(op % 16)
			switch op % 3 {
			case 0: // insert or touch
				if i := contains(p); i >= 0 {
					if !l.touch(p) {
						return false
					}
					model = append(append(model[:i:i], model[i+1:]...), p)
				} else {
					l.pushMRU(p)
					model = append(model, p)
				}
			case 1: // touch only
				touched := l.touch(p)
				if i := contains(p); i >= 0 {
					if !touched {
						return false
					}
					model = append(append(model[:i:i], model[i+1:]...), p)
				} else if touched {
					return false
				}
			case 2: // remove
				removed := l.remove(p)
				if i := contains(p); i >= 0 {
					if !removed {
						return false
					}
					model = append(model[:i:i], model[i+1:]...)
				} else if removed {
					return false
				}
			}
			if l.len() != len(model) {
				return false
			}
			if len(model) > 0 {
				front, ok := l.lru()
				if !ok || front != model[0] {
					return false
				}
			} else if _, ok := l.lru(); ok {
				return false
			}
		}
		// Full order check at the end.
		i := 0
		for n := l.head; n != nil; n = n.next {
			if i >= len(model) || n.page != model[i] {
				return false
			}
			i++
		}
		return i == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package policy

import (
	"testing"

	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

// --- CLOCK ---------------------------------------------------------------------

func TestClockSecondChance(t *testing.T) {
	c := NewClock()
	for i := 1; i <= 3; i++ {
		c.OnMapped(addrspace.PageID(i), i)
	}
	// All ref bits set at insertion: the first sweep clears 1,2,3 and the
	// second finds page 1.
	if v := c.SelectVictim(); v != 1 {
		t.Fatalf("victim = %v, want 1", v)
	}
	c.OnEvicted(1)
	// Page 2's bit is already clear; the hand sits past slot 0.
	if v := c.SelectVictim(); v != 2 {
		t.Fatalf("victim = %v, want 2", v)
	}
	// A hit on 3 grants it a second chance over... 2 already cleared.
	c.OnWalkHit(3, 9)
	c.OnEvicted(2)
	c.OnMapped(4, 10)
	// Ring: slot0=4(ref), slot1=(2 freed→4? slot reuse), slot2=3(ref).
	v := c.SelectVictim()
	if v != 3 && v != 4 {
		t.Fatalf("victim = %v, want a resident page", v)
	}
}

func TestClockSlotReuse(t *testing.T) {
	c := NewClock()
	for i := 0; i < 50; i++ {
		c.OnMapped(addrspace.PageID(i), i)
	}
	for i := 0; i < 25; i++ {
		c.OnEvicted(addrspace.PageID(i))
	}
	for i := 50; i < 75; i++ {
		c.OnMapped(addrspace.PageID(i), i)
	}
	if c.Len() != 50 || len(c.ring) != 50 {
		t.Fatalf("len=%d ring=%d, want 50/50", c.Len(), len(c.ring))
	}
}

func TestClockApproximatesLRU(t *testing.T) {
	// On a cyclic pattern CLOCK thrashes exactly like LRU.
	tr := cyclicTrace(20, 4)
	clock := Replay(tr, NewClock(), 15)
	lru := Replay(tr, NewLRU(), 15)
	if clock.Faults != lru.Faults {
		t.Fatalf("CLOCK %d faults vs LRU %d on cyclic pattern", clock.Faults, lru.Faults)
	}
}

// --- NRU -----------------------------------------------------------------------

func TestNRUEvictsUnreferenced(t *testing.T) {
	n := NewNRU()
	n.OnMapped(1, 0)
	n.OnMapped(2, 1)
	// Everything referenced: epoch clears, oldest (1) evicted.
	if v := n.SelectVictim(); v != 1 {
		t.Fatalf("victim = %v, want 1", v)
	}
	n.OnEvicted(1)
	n.OnMapped(3, 2) // ref=true
	// Page 2's bit was cleared by the epoch reset; 3 is referenced.
	if v := n.SelectVictim(); v != 2 {
		t.Fatalf("victim = %v, want 2 (unreferenced)", v)
	}
	n.OnWalkHit(2, 3) // re-reference 2
	n.OnEvicted(3)
	n.OnMapped(4, 4)
	if v := n.SelectVictim(); v == 3 {
		t.Fatal("NRU selected a non-resident page")
	}
}

// --- ARC -----------------------------------------------------------------------

func TestARCHitPromotesToT2(t *testing.T) {
	a := NewARC(4)
	a.OnFault(1, 0)
	a.OnMapped(1, 0)
	t1, t2, _, _, _ := a.Sizes()
	if t1 != 1 || t2 != 0 {
		t.Fatalf("after cold insert: T1=%d T2=%d", t1, t2)
	}
	a.OnWalkHit(1, 1)
	t1, t2, _, _, _ = a.Sizes()
	if t1 != 0 || t2 != 1 {
		t.Fatalf("after hit: T1=%d T2=%d, want promotion to T2", t1, t2)
	}
}

func TestARCGhostHitAdaptsTarget(t *testing.T) {
	// Capacity 3. Build T1={1,3}, T2={2}: fault 1, 2; hit 2 (promotes to
	// T2); fault 3.
	a := NewARC(3)
	for i := 1; i <= 2; i++ {
		a.OnFault(addrspace.PageID(i), i)
		a.OnMapped(addrspace.PageID(i), i)
	}
	a.OnWalkHit(2, 2)
	a.OnFault(3, 3)
	a.OnMapped(3, 3)
	// Fault 4: memory full; T1 (2) > p (0) → evict T1 LRU = page 1 → B1.
	a.OnFault(4, 4)
	v := a.SelectVictim()
	if v != 1 {
		t.Fatalf("victim = %v, want 1 (T1 LRU)", v)
	}
	a.OnEvicted(v)
	a.OnMapped(4, 4)
	_, _, b1, _, p0 := a.Sizes()
	if b1 != 1 {
		t.Fatalf("B1 = %d, want ghost of page 1 retained", b1)
	}
	// Refault page 1: B1 hit → p grows, page lands in T2.
	a.OnFault(1, 5)
	v = a.SelectVictim()
	a.OnEvicted(v)
	a.OnMapped(1, 5)
	t1, t2, _, _, p1 := a.Sizes()
	if p1 <= p0 {
		t.Fatalf("p did not grow on B1 hit: %d -> %d", p0, p1)
	}
	if t2 < 2 {
		t.Fatalf("ghost-hit page not inserted into T2 (T1=%d T2=%d)", t1, t2)
	}
}

func TestARCDirectoryBounded(t *testing.T) {
	capacity := 32
	a := NewARC(capacity)
	tr := randomTrace(20000, 500, 5)
	Replay(tr, a, capacity)
	t1, t2, b1, b2, p := a.Sizes()
	if t1+t2 > capacity {
		t.Fatalf("resident %d > capacity %d", t1+t2, capacity)
	}
	if t1+b1 > capacity {
		t.Fatalf("|T1|+|B1| = %d > capacity", t1+b1)
	}
	if t1+t2+b1+b2 > 2*capacity {
		t.Fatalf("directory %d > 2c", t1+t2+b1+b2)
	}
	if p < 0 || p > capacity {
		t.Fatalf("target p = %d out of [0, c]", p)
	}
}

func TestARCBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ARC with capacity 0 accepted")
		}
	}()
	NewARC(0)
}

// --- cross-checks across the extension policies ----------------------------------

func TestExtensionPoliciesReplayInvariants(t *testing.T) {
	tr := randomTrace(15000, 250, 77)
	capacity := 100
	for _, pol := range []Policy{NewClock(), NewNRU(), NewARC(capacity)} {
		res := Replay(tr, pol, capacity)
		if res.Hits+res.Faults != uint64(tr.Len()) {
			t.Errorf("%s: hits+faults = %d, want %d", pol.Name(), res.Hits+res.Faults, tr.Len())
		}
		if want := res.Faults - uint64(capacity); res.Evictions != want {
			t.Errorf("%s: evictions = %d, want %d", pol.Name(), res.Evictions, want)
		}
	}
}

func TestExtensionPoliciesNeverBeatIdeal(t *testing.T) {
	traces := []*trace.Trace{cyclicTrace(50, 5), randomTrace(20000, 200, 13)}
	for _, tr := range traces {
		capacity := tr.Footprint() * 3 / 4
		ideal := Replay(tr, NewIdeal(trace.BuildFutureIndex(tr)), capacity)
		for _, pol := range []Policy{NewClock(), NewNRU(), NewARC(capacity)} {
			got := Replay(tr, pol, capacity)
			if got.Faults < ideal.Faults {
				t.Errorf("%s: %s faulted %d < Ideal %d", tr.Name, pol.Name(), got.Faults, ideal.Faults)
			}
		}
	}
}

func TestARCAdaptsOnMixedWorkload(t *testing.T) {
	// A hot loop whose pages hit twice per pass (so T2 can capture them)
	// mixed with a cold scan: ARC protects the loop in T2 while the scan
	// churns T1; LRU lets the scan flush the loop. Note ARC cannot rescue a
	// loop that never hits while resident — bootstrap hits are required
	// (that is CLOCK-Pro/LIRS territory, and exactly why the paper compares
	// against CLOCK-Pro rather than ARC).
	var refs []addrspace.PageID
	for rep := 0; rep < 40; rep++ {
		for i := 0; i < 20; i++ { // hot loop, double-touched
			refs = append(refs, addrspace.PageID(i), addrspace.PageID(i))
		}
		for i := 0; i < 25; i++ { // cold scan segment
			refs = append(refs, addrspace.PageID(1000+rep*25+i))
		}
	}
	tr := trace.New("mixed", refs)
	capacity := 40
	arc := Replay(tr, NewARC(capacity), capacity)
	lru := Replay(tr, NewLRU(), capacity)
	if arc.Faults >= lru.Faults {
		t.Fatalf("ARC %d faults >= LRU %d on loop+scan mix", arc.Faults, lru.Faults)
	}
}

func BenchmarkReplayARC(b *testing.B) {
	tr := randomTrace(100000, 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr, NewARC(1500), 1500)
	}
}

// --- SetLRU (granularity ablation) -----------------------------------------------

func TestSetLRUDrainsVictimSetInAddressOrder(t *testing.T) {
	g := addrspaceGeom()
	s := NewSetLRU(g)
	for off := 0; off < 3; off++ {
		p := g.PageAt(1, off)
		s.OnFault(p, 0)
		s.OnMapped(p, 0)
	}
	for off := 0; off < 2; off++ {
		p := g.PageAt(2, off)
		s.OnFault(p, 0)
		s.OnMapped(p, 0)
	}
	// Set 1 is LRU; its pages drain in address order.
	for off := 0; off < 3; off++ {
		v := s.SelectVictim()
		if v != g.PageAt(1, off) {
			t.Fatalf("victim %d = %v, want %v", off, v, g.PageAt(1, off))
		}
		s.OnEvicted(v)
	}
	// Set 1 fully drained: set 2 is next.
	if v := s.SelectVictim(); g.SetOf(v) != 2 {
		t.Fatalf("victim %v not from set 2", v)
	}
	if s.Sets() != 1 {
		t.Fatalf("Sets = %d, want 1", s.Sets())
	}
}

func TestSetLRUTouchRefreshesWholeSet(t *testing.T) {
	g := addrspaceGeom()
	s := NewSetLRU(g)
	for id := 1; id <= 2; id++ {
		p := g.PageAt(addrspace.SetID(id), 0)
		s.OnFault(p, 0)
		s.OnMapped(p, 0)
	}
	// A hit on ANY page of set 1 protects all of set 1.
	s.OnWalkHit(g.PageAt(1, 5), 1)
	if v := s.SelectVictim(); g.SetOf(v) != 2 {
		t.Fatalf("victim %v, want set 2 (set 1 refreshed)", v)
	}
}

func TestSetLRUReplayInvariants(t *testing.T) {
	tr := randomTrace(15000, 400, 31)
	capacity := 150
	res := Replay(tr, NewSetLRUFactory(capacity), capacity)
	if res.Hits+res.Faults != uint64(tr.Len()) {
		t.Fatalf("hits+faults = %d", res.Hits+res.Faults)
	}
	ideal := Replay(tr, NewIdeal(trace.BuildFutureIndex(tr)), capacity)
	if res.Faults < ideal.Faults {
		t.Fatal("SetLRU beat Belady")
	}
}

func addrspaceGeom() addrspace.Geometry { return addrspace.DefaultGeometry() }

package policy

import (
	"container/heap"
	"math"

	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

// Ideal is the paper's offline upper-bound policy, "similar to Belady's MIN
// algorithm": on eviction it discards the resident page whose next use in
// the canonical reference string lies furthest in the future (or never
// comes). It consumes a FutureIndex built over the workload trace; the
// sequence numbers the driver passes with each event anchor "now".
//
// Implementation: a lazy max-heap keyed by next-use position selects
// victims; a twin min-heap (the expiry queue) catches entries whose recorded
// next use slipped behind the fault frontier without the policy seeing the
// touch (it was absorbed by the TLBs) — those entries are recomputed before
// any victim decision, otherwise dead pages would hide at the bottom of the
// max-heap looking "about to be used". Stale duplicates are discarded when
// popped. The fault frontier, not walk hits, advances "now": the GPU runs
// ahead of its faults, and hits from run-ahead would make genuinely pending
// uses look like the past.
type Ideal struct {
	future *trace.FutureIndex
	// nextUse holds the authoritative next-use position per resident page.
	nextUse map[addrspace.PageID]int
	victims idealHeap // max-heap: furthest next use on top
	expiry  idealHeap // min-heap: soonest recorded next use on top
	now     int
}

const neverUsedAgain = math.MaxInt

type idealHeapEntry struct {
	page addrspace.PageID
	next int
}

type idealHeap struct {
	entries []idealHeapEntry
	min     bool
}

func (h idealHeap) Len() int { return len(h.entries) }
func (h idealHeap) Less(i, j int) bool {
	if h.min {
		return h.entries[i].next < h.entries[j].next
	}
	return h.entries[i].next > h.entries[j].next
}
func (h idealHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *idealHeap) Push(x any)   { h.entries = append(h.entries, x.(idealHeapEntry)) }
func (h *idealHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

// NewIdeal returns an Ideal policy with future knowledge of the given trace.
func NewIdeal(fi *trace.FutureIndex) *Ideal {
	return &Ideal{
		future:  fi,
		nextUse: make(map[addrspace.PageID]int),
		expiry:  idealHeap{min: true},
	}
}

// NewIdealFactory returns a Factory producing Ideal policies over tr.
func NewIdealFactory(tr *trace.Trace) Factory {
	fi := trace.BuildFutureIndex(tr)
	return func(capacityPages int) Policy { return NewIdeal(fi) }
}

// Name implements Policy.
func (b *Ideal) Name() string { return "Ideal" }

func (b *Ideal) refresh(p addrspace.PageID, seq int) {
	next, ok := b.future.NextUse(p, seq)
	if !ok {
		next = neverUsedAgain
	}
	b.nextUse[p] = next
	e := idealHeapEntry{page: p, next: next}
	//lint:ignore hpelint/hotalloc container/heap's interface{} API boxes by design; ideal is the offline oracle baseline
	heap.Push(&b.victims, e)
	if next != neverUsedAgain {
		//lint:ignore hpelint/hotalloc container/heap's interface{} API boxes by design; ideal is the offline oracle baseline
		heap.Push(&b.expiry, e)
	}
}

// OnWalkHit implements Policy: recompute the page's next use.
func (b *Ideal) OnWalkHit(p addrspace.PageID, seq int) {
	if _, resident := b.nextUse[p]; resident {
		b.refresh(p, seq)
	}
}

// OnFault implements Policy: advance the fault frontier.
func (b *Ideal) OnFault(p addrspace.PageID, seq int) {
	if seq > b.now {
		b.now = seq
	}
}

// OnMapped implements Policy.
func (b *Ideal) OnMapped(p addrspace.PageID, seq int) { b.refresh(p, seq) }

// expire recomputes every live entry whose recorded next use fell behind the
// fault frontier (the touch happened, unseen, inside the TLBs).
func (b *Ideal) expire() {
	for b.expiry.Len() > 0 {
		top := b.expiry.entries[0]
		if top.next >= b.now {
			return
		}
		heap.Pop(&b.expiry)
		current, resident := b.nextUse[top.page]
		if !resident || current != top.next {
			continue // stale duplicate
		}
		b.refresh(top.page, b.now-1) // first use at or after now
	}
}

// SelectVictim implements Policy: the resident page with the furthest (or
// absent) next use.
func (b *Ideal) SelectVictim() addrspace.PageID {
	b.expire()
	for b.victims.Len() > 0 {
		top := b.victims.entries[0]
		current, resident := b.nextUse[top.page]
		if !resident || current != top.next {
			heap.Pop(&b.victims) // stale duplicate
			continue
		}
		return top.page
	}
	panic("policy: Ideal.SelectVictim with no resident pages")
}

// OnEvicted implements Policy.
func (b *Ideal) OnEvicted(p addrspace.PageID) { delete(b.nextUse, p) }

// Len returns the number of tracked resident pages.
func (b *Ideal) Len() int { return len(b.nextUse) }

// Package workload generates synthetic page-granularity reference strings
// that reproduce the access-pattern taxonomy of Fig. 2 in the paper and the
// 23 applications of Table II (Rodinia, Parboil, Polybench).
//
// We do not have the CUDA applications or GPGPU-Sim, so each application is
// modeled as a parameterised generator whose reference string exhibits the
// properties the paper attributes to it: its pattern type, its footprint
// scale, its page-set counter statistics (ratio₁/ratio₂, Fig. 9), and its
// documented quirks (NW's even/odd page phases, MVT's stride-4 touches,
// KMN/SAD's irregular counters, SGM's small ratio₁, BFS's embedded thrashing
// phase). The eviction-policy study depends only on these properties of the
// reference string, so preserving them preserves the paper's comparisons.
package workload

import (
	"math/rand"

	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

// Builder accumulates a reference string set by set. All randomness flows
// through the seeded rng so generation is deterministic.
type Builder struct {
	g        addrspace.Geometry
	rng      *rand.Rand
	refs     []addrspace.PageID
	barriers []int
	base     addrspace.SetID // first set of the current allocation
}

// NewBuilder returns a builder over the given geometry, with the virtual
// address space of the workload starting at baseSet.
func NewBuilder(g addrspace.Geometry, baseSet addrspace.SetID, seed int64) *Builder {
	return &Builder{g: g, rng: rand.New(rand.NewSource(seed)), base: baseSet}
}

// Geometry returns the builder's page-set geometry.
func (b *Builder) Geometry() addrspace.Geometry { return b.g }

// Rand exposes the builder's deterministic random source.
func (b *Builder) Rand() *rand.Rand { return b.rng }

// Refs returns the reference string built so far. The returned slice aliases
// the builder's storage.
func (b *Builder) Refs() []addrspace.PageID { return b.refs }

// Len returns the number of references emitted so far.
func (b *Builder) Len() int { return len(b.refs) }

// Barrier marks a kernel boundary at the current position: later references
// wait until everything before them completes. Generators place one between
// passes, phases, and rounds — the implicit synchronisation of consecutive
// kernel launches.
func (b *Builder) Barrier() {
	if n := len(b.barriers); n > 0 && b.barriers[n-1] == len(b.refs) {
		return // collapse double barriers
	}
	b.barriers = append(b.barriers, len(b.refs))
}

// Barriers returns the kernel boundaries recorded so far.
func (b *Builder) Barriers() []int { return b.barriers }

// Build packages the reference string and barriers into a named trace.
func (b *Builder) Build(name string) *trace.Trace {
	return trace.NewWithBarriers(name, b.refs, b.barriers)
}

// set translates a workload-local set index to a global SetID.
func (b *Builder) set(idx int) addrspace.SetID {
	return b.base + addrspace.SetID(idx)
}

// Touch appends dups consecutive references to one page. Adjacent duplicates
// model intra-page burst accesses; the TLB and walk-coalescing absorb all but
// the first, so they generate TLB traffic without inflating walk-level
// counters.
func (b *Builder) Touch(p addrspace.PageID, dups int) {
	for i := 0; i < max(1, dups); i++ {
		b.refs = append(b.refs, p)
	}
}

// TouchSet references every page of workload-local set idx in address order,
// each page dups times.
func (b *Builder) TouchSet(idx, dups int) {
	s := b.set(idx)
	for off := 0; off < b.g.SetSize(); off++ {
		b.Touch(b.g.PageAt(s, off), dups)
	}
}

// TouchSetOffsets references the pages of set idx at the given offsets, in
// the given order, each dups times.
func (b *Builder) TouchSetOffsets(idx int, offsets []int, dups int) {
	s := b.set(idx)
	for _, off := range offsets {
		b.Touch(b.g.PageAt(s, off), dups)
	}
}

// Sweep references sets [from, from+count) in ascending order, every page
// once per visit, with dups adjacent duplicates per page.
func (b *Builder) Sweep(from, count, dups int) {
	for i := 0; i < count; i++ {
		b.TouchSet(from+i, dups)
	}
}

// EvenOffsets and OddOffsets return the even/odd page offsets of a set, used
// to model NW's phase-split behaviour (§IV-C of the paper).
func (b *Builder) EvenOffsets() []int { return parityOffsets(b.g.SetSize(), 0) }

// OddOffsets returns the odd page offsets of a set.
func (b *Builder) OddOffsets() []int { return parityOffsets(b.g.SetSize(), 1) }

func parityOffsets(setSize, parity int) []int {
	var out []int
	for off := parity; off < setSize; off += 2 {
		out = append(out, off)
	}
	return out
}

// StrideOffsets returns offsets 0, stride, 2·stride, ... within a set — MVT's
// stride-4 page-touch behaviour wastes HIR entry space exactly this way.
func (b *Builder) StrideOffsets(stride int) []int {
	var out []int
	for off := 0; off < b.g.SetSize(); off += stride {
		out = append(out, off)
	}
	return out
}

// Shuffled returns a deterministic permutation of [0, n).
func (b *Builder) Shuffled(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	b.rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

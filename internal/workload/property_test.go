package workload

import (
	"reflect"
	"testing"
	"testing/quick"

	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

// Property tests for the Table II generators: every catalog app must
// generate deterministically, stay inside its declared footprint, and emit
// well-formed barriers — under the default geometry and every sensitivity
// geometry (page-set sizes 8/16/32). FuzzCatalogGenerate extends the same
// invariants to fuzzed (app, geometry) combinations; `go test` runs its seed
// corpus on every invocation and `go test -fuzz=FuzzCatalogGenerate` mutates
// beyond it.

// checkTraceInvariants asserts the generator contract for one generated
// trace of app under geometry g.
func checkTraceInvariants(t *testing.T, app App, g addrspace.Geometry, tr *trace.Trace) {
	t.Helper()
	if tr.Name != app.Abbr {
		t.Errorf("%s: trace named %q", app.Abbr, tr.Name)
	}
	if tr.Len() == 0 {
		t.Fatalf("%s: empty trace", app.Abbr)
	}
	// Every page ID falls inside the declared allocation: [base, base+Pages()).
	// The base set is the workload allocation origin (apps.go baseSet) under
	// the generation geometry.
	lo := g.FirstPage(baseSet)
	hi := lo + addrspace.PageID(app.Pages())
	for i, p := range tr.Refs {
		if p < lo || p >= hi {
			t.Fatalf("%s: ref %d = %v outside declared footprint [%v, %v)", app.Abbr, i, p, lo, hi)
		}
	}
	// The measured footprint never exceeds the catalog entry's nominal pages.
	if fp := tr.Footprint(); fp < 1 || fp > app.Pages() {
		t.Errorf("%s: footprint %d pages outside (0, %d]", app.Abbr, fp, app.Pages())
	}
	// Barriers are strictly ascending and strictly inside the trace.
	prev := 0
	for _, b := range tr.Barriers {
		if b <= prev || b >= tr.Len() {
			t.Errorf("%s: malformed barrier %d (prev %d, len %d)", app.Abbr, b, prev, tr.Len())
		}
		prev = b
	}
}

func TestCatalogGenerateDeterministic(t *testing.T) {
	for _, app := range Catalog() {
		t1, t2 := app.Generate(), app.Generate()
		if t1.Name != t2.Name || !reflect.DeepEqual(t1.Refs, t2.Refs) ||
			!reflect.DeepEqual(t1.Barriers, t2.Barriers) {
			t.Errorf("%s: Generate() is not deterministic across calls", app.Abbr)
		}
	}
}

func TestCatalogGenerateInvariants(t *testing.T) {
	g := addrspace.DefaultGeometry()
	for _, app := range Catalog() {
		checkTraceInvariants(t, app, g, app.Generate())
	}
}

// TestCatalogGeometryProperty drives the invariants through testing/quick
// over random (app, page-set size) combinations — the quick-check fallback
// for environments that never run the fuzzer.
func TestCatalogGeometryProperty(t *testing.T) {
	cat := Catalog()
	prop := func(appSel, shiftSel uint8) bool {
		app := cat[int(appSel)%len(cat)]
		g := addrspace.NewGeometry(uint(3 + shiftSel%3)) // set sizes 8/16/32
		t1 := app.GenerateWithGeometry(g)
		t2 := app.GenerateWithGeometry(g)
		if !reflect.DeepEqual(t1.Refs, t2.Refs) || !reflect.DeepEqual(t1.Barriers, t2.Barriers) {
			t.Logf("%s: GenerateWithGeometry(shift %d) not deterministic", app.Abbr, g.SetShift())
			return false
		}
		checkTraceInvariants(t, app, g, t1)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzCatalogGenerate fuzzes (app, geometry) selection. The seed corpus
// covers every catalog app at the default geometry plus the Fig. 7
// sensitivity sizes, so plain `go test` exercises all of them.
func FuzzCatalogGenerate(f *testing.F) {
	for i := range Catalog() {
		f.Add(uint8(i), uint8(1)) // default 16-page sets
	}
	f.Add(uint8(0), uint8(0)) // 8-page sets
	f.Add(uint8(0), uint8(2)) // 32-page sets
	f.Fuzz(func(t *testing.T, appSel, shiftSel uint8) {
		cat := Catalog()
		app := cat[int(appSel)%len(cat)]
		g := addrspace.NewGeometry(uint(3 + shiftSel%3))
		t1 := app.GenerateWithGeometry(g)
		t2 := app.GenerateWithGeometry(g)
		if !reflect.DeepEqual(t1.Refs, t2.Refs) || !reflect.DeepEqual(t1.Barriers, t2.Barriers) {
			t.Fatalf("%s: GenerateWithGeometry(shift %d) not deterministic", app.Abbr, g.SetShift())
		}
		checkTraceInvariants(t, app, g, t1)
	})
}

package workload

import "fmt"

// PatternType enumerates the six representative GPU access patterns of
// Fig. 2 in the paper.
type PatternType int

const (
	// PatternStreaming is Type I: (a1, a2, ..., ak), one pass, k unbounded.
	PatternStreaming PatternType = iota + 1
	// PatternThrashing is Type II: (a1, ..., ak)^N with k > memory size, N ≥ 2.
	PatternThrashing
	// PatternPartRepetitive is Type III: parts of the pages are referenced
	// multiple times with some probability.
	PatternPartRepetitive
	// PatternMostRepetitive is Type IV: most pages are referenced multiple
	// times, with intersecting reference order.
	PatternMostRepetitive
	// PatternRepetitiveThrashing is Type V: a Type IV sequence repeated N
	// times over a footprint exceeding memory.
	PatternRepetitiveThrashing
	// PatternRegionMoving is Type VI: the footprint is split into address
	// regions; each region is hot for a duration, then the app moves on.
	PatternRegionMoving

	// The workload-v2 scenario families sit outside the paper's Fig. 2
	// taxonomy: their reference strings are compositions of the six base
	// patterns rather than new per-kernel shapes (DESIGN.md §14).

	// PatternTemporal is a phase-schedule workload: the pattern, footprint,
	// and compute gap switch at declared phase boundaries.
	PatternTemporal
	// PatternColocated interleaves two or more tenants with disjoint address
	// ranges contending for one device memory.
	PatternColocated
	// PatternTrace replays a reference string captured in a .hpet file.
	PatternTrace
)

// String returns the paper's Roman-numeral name for the pattern.
func (p PatternType) String() string {
	switch p {
	case PatternStreaming:
		return "Type I"
	case PatternThrashing:
		return "Type II"
	case PatternPartRepetitive:
		return "Type III"
	case PatternMostRepetitive:
		return "Type IV"
	case PatternRepetitiveThrashing:
		return "Type V"
	case PatternRegionMoving:
		return "Type VI"
	case PatternTemporal:
		return "Temporal"
	case PatternColocated:
		return "Colocated"
	case PatternTrace:
		return "Trace"
	default:
		return fmt.Sprintf("PatternType(%d)", int(p))
	}
}

// Streaming emits Type I: one kernel streaming over `sets` page sets, each
// page touched once (dups adjacent duplicates model the intra-page burst).
func Streaming(b *Builder, sets, dups int) {
	b.Sweep(0, sets, dups)
}

// Thrashing emits Type II: `passes` complete sweeps over `sets` page sets,
// one kernel per pass. With footprint > memory this defeats LRU totally: by
// the time a sweep wraps, the head of the footprint has been evicted.
func Thrashing(b *Builder, sets, passes, dups int) {
	for p := 0; p < passes; p++ {
		b.Sweep(0, sets, dups)
		b.Barrier()
	}
}

// PartRepetitive emits Type III: a forward stream over `sets` page sets
// where each set is, with probability revisitProb, revisited once more after
// delaySets further sets have streamed past. Revisits are whole-set (all
// pages once), keeping set counters regular — multiples of the set size —
// as the paper observes for Type III applications. Pick delaySets beyond the
// L2 TLB reach (32 sets under the Table I configuration) if the revisits
// should be visible to the page walker.
func PartRepetitive(b *Builder, sets int, revisitProb float64, delaySets, dups int) {
	type pending struct {
		set int
		due int
	}
	var queue []pending
	for i := 0; i < sets; i++ {
		b.TouchSet(i, dups)
		for len(queue) > 0 && queue[0].due <= i {
			b.TouchSet(queue[0].set, dups)
			queue = queue[1:]
		}
		if b.rng.Float64() < revisitProb {
			queue = append(queue, pending{set: i, due: i + delaySets})
		}
	}
	for _, q := range queue {
		b.TouchSet(q.set, dups)
	}
}

// PartRepetitiveIrregular emits the KMN/SAD variant of Type III: revisits
// touch only a random subset of each set's pages, so set counters end up
// indivisible by the set size (the large-ratio₁ outliers of Fig. 9).
func PartRepetitiveIrregular(b *Builder, sets int, revisitProb float64, delaySets, dups int) {
	type pending struct {
		set int
		due int
	}
	var queue []pending
	for i := 0; i < sets; i++ {
		b.TouchSet(i, dups)
		for len(queue) > 0 && queue[0].due <= i {
			// Revisit a random, non-empty, strict subset of pages.
			n := 1 + b.rng.Intn(b.g.SetSize()-1)
			offsets := b.Shuffled(b.g.SetSize())[:n]
			b.TouchSetOffsets(queue[0].set, offsets, dups)
			queue = queue[1:]
		}
		if b.rng.Float64() < revisitProb {
			queue = append(queue, pending{set: i, due: i + delaySets})
		}
	}
}

// MostRepetitive emits Type IV: a window of `windowSets` sets slides over the
// footprint; sets inside the window are revisited in shuffled rounds, so
// references to different sets intersect. One kernel per revisit round.
func MostRepetitive(b *Builder, sets, windowSets, visits, dups int) {
	if windowSets < 1 {
		windowSets = 1
	}
	window := make([]int, 0, windowSets)
	admit := func(s int) {
		window = append(window, s)
		if len(window) > windowSets {
			window = window[1:]
		}
	}
	rounds := max(1, visits-1)
	for s := 0; s < sets; s++ {
		b.TouchSet(s, dups) // first touch: the whole set faults in
		admit(s)
		if (s+1)%max(1, windowSets/rounds) == 0 {
			b.Barrier()
			for _, idx := range b.Shuffled(len(window)) {
				b.TouchSet(window[idx], dups)
			}
			b.Barrier()
		}
	}
}

// RepetitiveThrashing emits Type V: `passes` kernels sweeping the footprint,
// where within each pass set s receives visitsFor(s) back-to-back visit
// rounds — combining cyclic reuse (Type II) with per-set repetition
// (Type IV).
func RepetitiveThrashing(b *Builder, sets, passes int, visitsFor func(set int) int, dups int) {
	for p := 0; p < passes; p++ {
		for s := 0; s < sets; s++ {
			v := max(1, visitsFor(s))
			for i := 0; i < v; i++ {
				b.TouchSet(s, dups)
			}
		}
		b.Barrier()
	}
}

// RepetitiveThrashingIrregular is the HIS/SPV variant of Type V: each pass
// streams the footprint and, delaySets behind the stream point, revisits a
// random subset of an earlier set's pages. The delayed partial revisits give
// sets irregular counters once they are visible to the walker (delaySets
// beyond the 32-set L2 TLB reach).
func RepetitiveThrashingIrregular(b *Builder, sets, passes, delaySets, dups int) {
	for p := 0; p < passes; p++ {
		for s := 0; s < sets; s++ {
			b.TouchSet(s, dups)
			if back := s - delaySets; back >= 0 {
				n := 1 + b.rng.Intn(b.g.SetSize()-1)
				b.TouchSetOffsets(back, b.Shuffled(b.g.SetSize())[:n], dups)
			}
		}
		b.Barrier()
	}
}

// RegionMoving emits Type VI: the footprint is divided into `regions` equal
// address regions; each region's sets are visited `visits` rounds (one
// kernel per round, shuffled within the region) before the app moves on.
// Recency perfectly predicts reuse, which is why LRU wins on this type and
// frequency-biased policies (RRIP, CLOCK-Pro) lose. Regions larger than the
// L2 TLB reach (32 sets) make the revisit rounds visible to the walker,
// driving set counters to the large-and-regular band of Fig. 9.
func RegionMoving(b *Builder, sets, regions, visits, dups int) {
	if regions < 1 {
		regions = 1
	}
	per := max(1, sets/regions)
	for r := 0; r < regions; r++ {
		from := r * per
		count := per
		if r == regions-1 {
			count = sets - from
		}
		if count <= 0 {
			break
		}
		for v := 0; v < visits; v++ {
			for _, i := range b.Shuffled(count) {
				b.TouchSet(from+i, dups)
			}
			b.Barrier()
		}
	}
}

// EvenOddPhases models NW: `visits` kernel rounds touching only the even
// pages of every set, then the same number of rounds over the odd pages.
// Evicting a half-touched set causes thrashing when the other half is
// needed; HPE's page-set division targets exactly this. With 8 even pages
// per 16-page set, visits = 8 drives the primaries' counters to the 64 cap,
// triggering the division check.
func EvenOddPhases(b *Builder, sets, visits, dups int) {
	for v := 0; v < visits; v++ {
		for s := 0; s < sets; s++ {
			b.TouchSetOffsets(s, b.EvenOffsets(), dups)
		}
		b.Barrier()
	}
	for v := 0; v < visits; v++ {
		for s := 0; s < sets; s++ {
			b.TouchSetOffsets(s, b.OddOffsets(), dups)
		}
		b.Barrier()
	}
}

// StridedRepetitive models MVT: only pages at the given stride within each
// set are touched (stride 4 → 4 pages per 16-page set), revisited over
// `visits` kernel rounds. This wastes HIR entry space (each entry records
// only SetSize/stride pages) and produces irregular set counters.
func StridedRepetitive(b *Builder, sets, stride, visits, dups int) {
	offsets := b.StrideOffsets(stride)
	for v := 0; v < visits; v++ {
		for s := 0; s < sets; s++ {
			b.TouchSetOffsets(s, offsets, dups)
		}
		b.Barrier()
	}
}

// FrontierWithThrash models BFS: a hot region of `hotSets` sets (the CSR
// arrays and visited bitmap) is swept `initSweeps` times up front, then each
// frontier level touches a fresh slice of sets and re-sweeps everything
// visited so far. The recurring full sweeps are the "thrashing pattern in
// BFS's page walk trace" that makes pure LRU catastrophic (§IV-E), and the
// hot region's accumulated counters give BFS its large-and-regular census.
func FrontierWithThrash(b *Builder, sets, hotSets, levels, initSweeps, dups int) {
	if hotSets < 1 || hotSets >= sets {
		panic(fmt.Sprintf("workload: FrontierWithThrash hotSets %d out of (0,%d)", hotSets, sets))
	}
	if levels < 1 {
		levels = 1
	}
	for i := 0; i < initSweeps; i++ {
		b.Sweep(0, hotSets, dups)
		b.Barrier()
	}
	frontier := sets - hotSets
	per := max(1, frontier/levels)
	covered := hotSets
	for l := 0; l < levels && covered < sets; l++ {
		count := per
		if covered+count > sets {
			count = sets - covered
		}
		for _, i := range b.Shuffled(count) {
			b.TouchSet(covered+i, dups)
		}
		b.Barrier()
		covered += count
		b.Sweep(0, covered, dups)
		b.Barrier()
	}
	b.Sweep(0, sets, dups)
	b.Barrier()
}

// RegionMovingHot is the B+T/HYB variant of Type VI: a hot header region of
// `hotSets` sets (a b+tree's root and internal nodes, a sort's histogram) is
// re-touched on every kernel round while the remaining sets are visited
// region by region. Header sets are only partially populated (12 of 16
// pages — interior-node occupancy), so they carry irregular counters from
// the first round on, which is what pushes these applications into the LRU
// categories the paper observes them using throughout execution.
func RegionMovingHot(b *Builder, sets, hotSets, regions, visits, dups int) {
	if hotSets < 0 || hotSets >= sets {
		panic(fmt.Sprintf("workload: RegionMovingHot hotSets %d out of [0,%d)", hotSets, sets))
	}
	if regions < 1 {
		regions = 1
	}
	body := sets - hotSets
	per := max(1, body/regions)
	for r := 0; r < regions; r++ {
		from := hotSets + r*per
		count := per
		if r == regions-1 {
			count = sets - from
		}
		if count <= 0 {
			break
		}
		for v := 0; v < visits; v++ {
			// Header touches interleave with the region round: every tree
			// descent passes through the internal nodes, so their recency
			// refreshes continuously rather than once per kernel.
			hot := b.Shuffled(hotSets)
			headerPages := b.g.SetSize() * 3 / 4
			h := 0
			for n, i := range b.Shuffled(count) {
				b.TouchSet(from+i, dups)
				// Spread header touches evenly across the round so the
				// header is never much older than the youngest region set.
				for h < len(hot) && h*count <= n*hotSets {
					b.TouchSetOffsets(hot[h], b.Shuffled(b.g.SetSize())[:headerPages], dups)
					h++
				}
			}
			for ; h < len(hot); h++ {
				b.TouchSetOffsets(hot[h], b.Shuffled(b.g.SetSize())[:headerPages], dups)
			}
			b.Barrier()
		}
	}
}

// Workload v2: the scenario families beyond the paper's stationary
// single-app generators (DESIGN.md §14). Three compositions of the Table II
// catalog are supported, each surfacing as a synthesized App so every layer
// that speaks (App, Trace) — the suite, hped, the coordinator, the CLIs —
// runs scenarios without knowing they exist:
//
//   - Phase schedules: the pattern, footprint, and compute gap switch at
//     declared boundaries (diurnal growth, burst arrivals, shrink-regrow).
//     Phases overlap one address region, so a shrinking phase re-touches the
//     pages its predecessor grew.
//   - Colocation: two or more tenants with disjoint address ranges are
//     interleaved in fixed reference quanta, contending for one device
//     memory and one eviction policy.
//   - Trace replay: a reference string captured in a .hpet file (FromTrace,
//     used by the runspec "trace:<path>" app source).
//
// All randomness is seeded from the scenario's canonical string, mirroring
// App.seed: the same spec generates the same trace on every host.
package workload

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

// Scenario grammar limits. Parse errors, not panics: scenario strings arrive
// from CLI flags and wire specs.
const (
	maxPhases      = 32
	maxPhaseSets   = 8192
	maxPhaseGap    = 4096
	maxPhaseRepeat = 64
	maxTenants     = 4
	maxTenantScale = 64
	minTenants     = 2
)

// MaxInterleave bounds the colocation scheduling quantum a spec may request.
const MaxInterleave = 1 << 20

// DefaultInterleave is the per-tenant scheduling quantum, in references,
// applied when a colocated spec leaves the interleave unset.
const DefaultInterleave = 1024

// Phase is one entry of a PhaseSchedule: run App's generator over Sets page
// sets (default geometry) with compute gap Gap, Repeat times in a row.
type Phase struct {
	App    App
	Sets   int
	Gap    int
	Repeat int
}

// PhaseSchedule is a deterministic, seedable temporal workload: a sequence
// of phases generated over one shared address region. Build one with
// ParsePhases; the zero value is invalid.
type PhaseSchedule struct {
	phases []Phase
	canon  string
}

// ParsePhases parses a comma-separated phase-schedule string. Each token is
//
//	ABBR[:SETS[:GAP]][xREPEAT]
//
// where ABBR names a catalog application supplying the phase's access
// pattern, SETS overrides its footprint in page sets, GAP overrides its
// compute gap, and xREPEAT runs the phase's generator that many consecutive
// times ("HOT:32,HSD:96,HOT:32" or "STNx2,STN:16x2"). Omitted fields default
// to the catalog values and fold away in the canonical form, so an explicit
// default and an omitted one canonicalize — and content-address — the same.
func ParsePhases(s string) (PhaseSchedule, error) {
	toks := strings.Split(s, ",")
	if len(toks) > maxPhases {
		return PhaseSchedule{}, fmt.Errorf("workload: %d phases exceed the %d-phase limit", len(toks), maxPhases)
	}
	var ps PhaseSchedule
	var canon []string
	for _, tok := range toks {
		p, err := parsePhaseToken(strings.TrimSpace(tok))
		if err != nil {
			return PhaseSchedule{}, err
		}
		ps.phases = append(ps.phases, p)
		canon = append(canon, phaseToken(p))
	}
	if len(ps.phases) == 0 {
		return PhaseSchedule{}, fmt.Errorf("workload: empty phase schedule")
	}
	ps.canon = strings.Join(canon, ",")
	return ps, nil
}

// parsePhaseToken parses one ABBR[:SETS[:GAP]][xREPEAT] token.
func parsePhaseToken(tok string) (Phase, error) {
	if tok == "" {
		return Phase{}, fmt.Errorf("workload: empty phase token")
	}
	repeat := 1
	// Catalog abbreviations are upper-case, so a lower-case x introduces the
	// repeat suffix unambiguously (B+T, 2DC never contain one).
	if i := strings.LastIndexByte(tok, 'x'); i >= 0 {
		n, err := strconv.Atoi(tok[i+1:])
		if err != nil || n < 1 || n > maxPhaseRepeat {
			return Phase{}, fmt.Errorf("workload: phase %q: repeat must be an integer in [1,%d]", tok, maxPhaseRepeat)
		}
		repeat = n
		tok = tok[:i]
	}
	parts := strings.Split(tok, ":")
	if len(parts) > 3 {
		return Phase{}, fmt.Errorf("workload: phase %q: want ABBR[:SETS[:GAP]]", tok)
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	app, ok := ByAbbr(strings.ToUpper(parts[0]))
	if !ok {
		return Phase{}, fmt.Errorf("workload: phase %q: unknown application %q", tok, parts[0])
	}
	p := Phase{App: app, Sets: app.Sets, Gap: app.ComputeGap, Repeat: repeat}
	if len(parts) >= 2 {
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 1 || n > maxPhaseSets {
			return Phase{}, fmt.Errorf("workload: phase %q: sets must be an integer in [1,%d]", tok, maxPhaseSets)
		}
		if floor := phaseFloor(app); n < floor {
			return Phase{}, fmt.Errorf("workload: phase %q: %s needs at least %d sets", tok, app.Abbr, floor)
		}
		p.Sets = n
	}
	if len(parts) == 3 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 0 || n > maxPhaseGap {
			return Phase{}, fmt.Errorf("workload: phase %q: gap must be an integer in [0,%d]", tok, maxPhaseGap)
		}
		p.Gap = n
	}
	return p, nil
}

// phaseToken renders a phase in canonical form: catalog defaults omitted,
// x1 folded away.
func phaseToken(p Phase) string {
	tok := p.App.Abbr
	switch {
	case p.Gap != p.App.ComputeGap:
		tok = fmt.Sprintf("%s:%d:%d", p.App.Abbr, p.Sets, p.Gap)
	case p.Sets != p.App.Sets:
		tok = fmt.Sprintf("%s:%d", p.App.Abbr, p.Sets)
	}
	if p.Repeat > 1 {
		tok += "x" + strconv.Itoa(p.Repeat)
	}
	return tok
}

// Canonical returns the schedule's canonical string form — the value the
// runspec "phases" field carries after canonicalization.
func (s PhaseSchedule) Canonical() string { return s.canon }

// Phases returns the parsed phase entries.
func (s PhaseSchedule) Phases() []Phase { return s.phases }

// maxSets returns the schedule's nominal footprint: phases share one address
// region, so the footprint is the largest phase's, not the sum.
func (s PhaseSchedule) maxSets() int {
	m := 1
	for _, p := range s.phases {
		if p.Sets > m {
			m = p.Sets
		}
	}
	return m
}

// scenarioSeed derives a deterministic per-component seed from a scenario's
// canonical string, the way App.seed derives one from the abbreviation.
func scenarioSeed(canon string, idx int) int64 {
	h := fnv.New64a()
	h.Write([]byte(canon))
	h.Write([]byte("#" + strconv.Itoa(idx)))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// geomSets converts a footprint in default-geometry page sets to the target
// geometry, preserving pages.
func geomSets(defaultSets int, g addrspace.Geometry) int {
	return max(1, defaultSets*addrspace.DefaultSetSize/g.SetSize())
}

// phaseFloor returns the smallest footprint, in sets, the app's generator
// supports. Catalog generators embed fixed-size structures — BFS's CSR hot
// region, B+T's header sets, NW's input stream — that need room no matter how
// far a phase shrinks the footprint. ParsePhases rejects smaller requests;
// generate clamps, since geometry conversion can shrink a valid footprint.
func phaseFloor(a App) int {
	switch a.Abbr {
	case "BFS":
		return 97 // FrontierWithThrash: the 96-set hot region must leave frontier room
	case "NW":
		return 132 // genNW: the 128-set input stream must leave matrix room
	case "B+T", "HYB":
		return 25 // RegionMovingHot: the 24-set header must leave body room
	}
	return 1
}

// generate builds one phase's reference string in its own seeded builder —
// each phase draws from an independent RNG stream, so a phase's contribution
// is invariant to what ran before it (the FuzzPhaseSchedule sum oracle).
func (p Phase) generate(g addrspace.Geometry, seed int64, factor int) *Builder {
	b := NewBuilder(g, baseSet, seed)
	sets := max(geomSets(p.Sets*factor, g), phaseFloor(p.App))
	for r := 0; r < p.Repeat; r++ {
		p.App.gen(b, sets)
		b.Barrier()
	}
	return b
}

// generate assembles the schedule's trace: phase reference strings
// concatenated over the shared region, kernel barriers preserved (plus one at
// each phase boundary), and one trace segment per phase carrying its compute
// gap.
func (s PhaseSchedule) generate(g addrspace.Geometry, factor int) *trace.Trace {
	var refs []addrspace.PageID
	var barriers []int
	var segs []trace.Segment
	for i, p := range s.phases {
		b := p.generate(g, scenarioSeed(s.canon, i), factor)
		if b.Len() == 0 {
			continue
		}
		off := len(refs)
		segs = append(segs, trace.Segment{Start: off, Phase: i, Gap: p.Gap})
		for _, br := range b.Barriers() {
			barriers = append(barriers, off+br)
		}
		refs = append(refs, b.Refs()...)
	}
	tr := trace.NewWithBarriers("phases:"+s.canon, refs, barriers)
	return tr.Annotate(segs, nil)
}

// App wraps the schedule as a synthesized application: Generate produces the
// phase-annotated trace, Scaled multiplies every phase footprint, and the
// suite/server trace caches key on the canonical Abbr. Scenario apps are not
// part of Catalog(); they exist only through their specs.
func (s PhaseSchedule) App() App {
	nominal := s.maxSets()
	return App{
		Name:       "phases(" + s.canon + ")",
		Abbr:       "phases:" + s.canon,
		Suite:      "scenario",
		Pattern:    PatternTemporal,
		Sets:       nominal,
		ComputeGap: s.phases[0].Gap,
		build: func(g addrspace.Geometry, sets int) *trace.Trace {
			factor := 1
			if sets > nominal {
				factor = sets / nominal
			}
			return s.generate(g, factor)
		},
	}
}

// ---- multi-tenant colocation ----------------------------------------------

// Tenant is one co-located application with a footprint multiplier.
type Tenant struct {
	App   App
	Scale int
}

// Colocation composes two or more tenants over disjoint address ranges.
// Build one with ParseTenants; the zero value is invalid.
type Colocation struct {
	tenants []Tenant
	canon   string
}

// ParseTenants parses a comma-separated tenant list. Each token is
//
//	ABBR[xSCALE]
//
// naming a catalog application and an optional footprint multiplier
// ("HSD,BFS", "HOT,NWx2"). Two to four tenants.
func ParseTenants(s string) (Colocation, error) {
	toks := strings.Split(s, ",")
	if len(toks) < minTenants || len(toks) > maxTenants {
		return Colocation{}, fmt.Errorf("workload: %d tenants outside [%d,%d]", len(toks), minTenants, maxTenants)
	}
	var c Colocation
	var canon []string
	for _, tok := range toks {
		tok = strings.TrimSpace(tok)
		scale := 1
		if i := strings.LastIndexByte(tok, 'x'); i >= 0 {
			n, err := strconv.Atoi(tok[i+1:])
			if err != nil || n < 1 || n > maxTenantScale {
				return Colocation{}, fmt.Errorf("workload: tenant %q: scale must be an integer in [1,%d]", tok, maxTenantScale)
			}
			scale = n
			tok = tok[:i]
		}
		app, ok := ByAbbr(strings.ToUpper(tok))
		if !ok {
			return Colocation{}, fmt.Errorf("workload: unknown tenant application %q", tok)
		}
		c.tenants = append(c.tenants, Tenant{App: app, Scale: scale})
		canon = append(canon, tenantToken(Tenant{App: app, Scale: scale}))
	}
	c.canon = strings.Join(canon, ",")
	return c, nil
}

// tenantToken renders a tenant in canonical form (x1 folded away).
func tenantToken(t Tenant) string {
	if t.Scale > 1 {
		return t.App.Abbr + "x" + strconv.Itoa(t.Scale)
	}
	return t.App.Abbr
}

// Canonical returns the colocation's canonical string form — the value the
// runspec "tenants" field carries after canonicalization.
func (c Colocation) Canonical() string { return c.canon }

// Tenants returns the parsed tenant entries.
func (c Colocation) Tenants() []Tenant { return c.tenants }

// totalSets is the combined nominal footprint: tenant ranges are disjoint,
// so footprints add.
func (c Colocation) totalSets() int {
	total := 0
	for _, t := range c.tenants {
		total += t.App.Sets * t.Scale
	}
	return total
}

// generate interleaves the tenants' reference strings in quanta of
// `interleave` references. Each tenant's string is generated independently
// over its own address range; per-tenant kernel barriers are dropped —
// co-located processes do not synchronise with each other — and each quantum
// becomes a trace segment carrying the tenant's compute gap, with the tenant
// page ranges recorded for fault/eviction attribution.
func (c Colocation) generate(g addrspace.Geometry, interleave, factor int) *trace.Trace {
	type stream struct {
		refs []addrspace.PageID
		pos  int
		gap  int
	}
	streams := make([]stream, len(c.tenants))
	tens := make([]trace.TenantRange, len(c.tenants))
	base := baseSet
	total := 0
	for i, t := range c.tenants {
		sets := max(geomSets(t.App.Sets*t.Scale*factor, g), phaseFloor(t.App))
		b := NewBuilder(g, base, scenarioSeed(c.canon, i))
		t.App.gen(b, sets)
		streams[i] = stream{refs: b.Refs(), gap: t.App.ComputeGap}
		lo := g.FirstPage(base)
		tens[i] = trace.TenantRange{
			Name: tenantToken(t),
			Lo:   lo,
			Hi:   lo + addrspace.PageID(sets*g.SetSize()),
		}
		base += addrspace.SetID(sets)
		total += len(b.Refs())
	}
	refs := make([]addrspace.PageID, 0, total)
	var segs []trace.Segment
	lastPhase := -1
	for len(refs) < total {
		for i := range streams {
			st := &streams[i]
			if st.pos >= len(st.refs) {
				continue
			}
			n := min(interleave, len(st.refs)-st.pos)
			if i != lastPhase {
				// Adjacent quanta of the same tenant (everyone else drained)
				// coalesce into one segment.
				segs = append(segs, trace.Segment{Start: len(refs), Phase: i, Gap: st.gap})
				lastPhase = i
			}
			refs = append(refs, st.refs[st.pos:st.pos+n]...)
			st.pos += n
		}
	}
	name := "tenants:" + c.canon + "@" + strconv.Itoa(interleave)
	return trace.New(name, refs).Annotate(segs, tens)
}

// App wraps the colocation as a synthesized application for the given
// interleave quantum. The quantum is part of the Abbr: it changes the
// reference string, so traces generated under different quanta must never
// share a cache entry.
func (c Colocation) App(interleave int) App {
	if interleave <= 0 {
		interleave = DefaultInterleave
	}
	nominal := c.totalSets()
	return App{
		Name:       "tenants(" + c.canon + ")",
		Abbr:       "tenants:" + c.canon + "@" + strconv.Itoa(interleave),
		Suite:      "scenario",
		Pattern:    PatternColocated,
		Sets:       nominal,
		ComputeGap: c.tenants[0].App.ComputeGap,
		build: func(g addrspace.Geometry, sets int) *trace.Trace {
			factor := 1
			if sets > nominal {
				factor = sets / nominal
			}
			return c.generate(g, interleave, factor)
		},
	}
}

// ---- trace replay ----------------------------------------------------------

// FromTrace wraps a pre-loaded reference string (typically read from a .hpet
// file) as an App, so captured fault logs materialize and replay through the
// same paths as generated workloads. source is the identity the app carries
// (the runspec uses the file path). Scaling does not apply: the trace is
// what it is.
func FromTrace(source string, tr *trace.Trace) App {
	sets := max(1, (tr.Footprint()+addrspace.DefaultSetSize-1)/addrspace.DefaultSetSize)
	return App{
		Name:    "trace(" + source + ")",
		Abbr:    "trace:" + source,
		Suite:   "scenario",
		Pattern: PatternTrace,
		Sets:    sets,
		// Replayed traces carry no global compute intensity; annotated (v2)
		// traces override this per segment, v1 traces run at the simulator
		// default.
		ComputeGap: 4,
		build:      func(addrspace.Geometry, int) *trace.Trace { return tr },
	}
}

// ---- named scenario presets ------------------------------------------------

// Scenario is a named, ready-made workload-v2 preset: the spec fragment to
// merge into a RunSpec. Serve-side, hped lists these on /v1/scenarios.
type Scenario struct {
	// Name is the preset's identifier ("diurnal").
	Name string `json:"name"`
	// Description says what the scenario models.
	Description string `json:"description"`
	// Phases is the spec's "phases" field, when the preset is temporal.
	Phases string `json:"phases,omitempty"`
	// Tenants is the spec's "tenants" field, when the preset is colocated.
	Tenants string `json:"tenants,omitempty"`
	// Interleave is the spec's "interleave" field for colocated presets.
	Interleave int `json:"interleave,omitempty"`
}

// Scenarios returns the named workload-v2 presets, in catalog order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "diurnal", Description: "footprint grows to a midday peak, then shrinks back over the same pages",
			Phases: "HOT:32,HOT:64,HOT:96,HOT,HOT:96,HOT:64,HOT:32"},
		{Name: "burst", Description: "steady part-repetitive baseline interrupted by a thrashing burst arrival",
			Phases: "PAT:48,HSD:96,PAT:48"},
		{Name: "regrow", Description: "footprint shrinks sharply, then regrows — eviction state must survive the trough",
			Phases: "STNx2,STN:16x2,STNx2"},
		{Name: "colo-mix", Description: "thrashing and frontier tenants contending for one device memory",
			Tenants: "HSD,BFS", Interleave: DefaultInterleave},
		{Name: "colo-stream", Description: "streaming tenant beside a phase-repetitive tenant",
			Tenants: "HOT,NW", Interleave: DefaultInterleave},
	}
}

// ScenarioByName returns the named preset.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

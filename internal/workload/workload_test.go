package workload

import (
	"reflect"
	"testing"

	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

func TestCatalogMatchesTableII(t *testing.T) {
	apps := Catalog()
	if len(apps) != 23 {
		t.Fatalf("catalog has %d apps, want 23 (Table II)", len(apps))
	}
	// Table II membership.
	want := map[PatternType][]string{
		PatternStreaming:           {"HOT", "LEU", "CUT", "2DC", "GEM"},
		PatternThrashing:           {"SRD", "HSD", "MRQ", "STN"},
		PatternPartRepetitive:      {"PAT", "DWT", "BKP", "KMN", "SAD"},
		PatternMostRepetitive:      {"NW", "BFS", "MVT"},
		PatternRepetitiveThrashing: {"HWL", "SGM", "HIS", "SPV"},
		PatternRegionMoving:        {"B+T", "HYB"},
	}
	for pt, abbrs := range want {
		got := ByPattern(pt)
		if len(got) != len(abbrs) {
			t.Errorf("%v: %d apps, want %d", pt, len(got), len(abbrs))
			continue
		}
		for i, a := range got {
			if a.Abbr != abbrs[i] {
				t.Errorf("%v[%d] = %s, want %s", pt, i, a.Abbr, abbrs[i])
			}
		}
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Abbr] {
			t.Errorf("duplicate abbreviation %s", a.Abbr)
		}
		seen[a.Abbr] = true
		if a.Suite != "Rodinia" && a.Suite != "Parboil" && a.Suite != "Polybench" {
			t.Errorf("%s: unknown suite %q", a.Abbr, a.Suite)
		}
		if a.Sets <= 0 || a.ComputeGap < 0 {
			t.Errorf("%s: bad parameters %+v", a.Abbr, a)
		}
	}
}

func TestByAbbr(t *testing.T) {
	a, ok := ByAbbr("HSD")
	if !ok || a.Name != "hotspot3D" {
		t.Fatalf("ByAbbr(HSD) = %+v, %v", a, ok)
	}
	if _, ok := ByAbbr("NOPE"); ok {
		t.Fatal("ByAbbr(NOPE) found something")
	}
}

func TestAbbrsAndPatternTypes(t *testing.T) {
	if len(Abbrs()) != 23 {
		t.Fatalf("Abbrs() len = %d", len(Abbrs()))
	}
	pts := PatternTypes()
	if len(pts) != 6 {
		t.Fatalf("PatternTypes() = %v, want 6 types", pts)
	}
	for i, p := range pts {
		if int(p) != i+1 {
			t.Fatalf("PatternTypes() = %v, want I..VI ascending", pts)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, abbr := range []string{"HOT", "HSD", "KMN", "BFS", "NW", "B+T"} {
		a, _ := ByAbbr(abbr)
		t1, t2 := a.Generate(), a.Generate()
		if !reflect.DeepEqual(t1.Refs, t2.Refs) {
			t.Errorf("%s: generation is not deterministic", abbr)
		}
	}
}

func TestGenerateFootprints(t *testing.T) {
	for _, a := range Catalog() {
		tr := a.Generate()
		if tr.Len() == 0 {
			t.Errorf("%s: empty trace", a.Abbr)
			continue
		}
		fp := tr.Footprint()
		// Footprint should be close to the nominal Sets×16 pages. MVT (stride
		// 4) touches only a quarter of each set; NW touches all pages.
		nominal := a.Pages()
		lo := nominal / 5
		if fp < lo || fp > nominal {
			t.Errorf("%s: footprint %d pages outside (%d, %d]", a.Abbr, fp, lo, nominal)
		}
		if tr.Len() > 2_000_000 {
			t.Errorf("%s: trace too long (%d refs) for practical simulation", a.Abbr, tr.Len())
		}
	}
}

func TestStreamingPatternCounts(t *testing.T) {
	b := NewBuilder(addrspace.DefaultGeometry(), 100, 1)
	Streaming(b, 4, 2)
	tr := trace.New("s", b.Refs())
	if tr.Footprint() != 4*16 {
		t.Fatalf("footprint = %d, want 64", tr.Footprint())
	}
	for p, c := range tr.Counts() {
		if c != 2 {
			t.Fatalf("page %v referenced %d times, want 2", p, c)
		}
	}
	// One pass: pages appear in ascending order of first touch.
	last := addrspace.PageID(0)
	for _, p := range tr.Refs {
		if p < last {
			t.Fatal("streaming pattern went backwards")
		}
		last = p
	}
}

func TestThrashingPatternCounts(t *testing.T) {
	b := NewBuilder(addrspace.DefaultGeometry(), 0, 1)
	Thrashing(b, 3, 4, 1)
	tr := trace.New("t", b.Refs())
	for p, c := range tr.Counts() {
		if c != 4 {
			t.Fatalf("page %v count %d, want 4 (passes)", p, c)
		}
	}
	if tr.Len() != 3*16*4 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestPartRepetitiveRevisitsWholeSets(t *testing.T) {
	g := addrspace.DefaultGeometry()
	b := NewBuilder(g, 0, 42)
	PartRepetitive(b, 50, 0.5, 5, 1)
	tr := trace.New("p", b.Refs())
	// Per-set counts must be multiples of 16 (whole-set revisits keep
	// counters regular).
	setCounts := map[addrspace.SetID]int{}
	for _, p := range tr.Refs {
		setCounts[g.SetOf(p)]++
	}
	revisited := 0
	for s, c := range setCounts {
		if c%16 != 0 {
			t.Fatalf("set %v count %d not a multiple of 16", s, c)
		}
		if c > 16 {
			revisited++
		}
	}
	if revisited == 0 {
		t.Fatal("no sets were revisited with prob 0.5")
	}
}

func TestPartRepetitiveIrregularProducesIrregularCounters(t *testing.T) {
	g := addrspace.DefaultGeometry()
	b := NewBuilder(g, 0, 42)
	PartRepetitiveIrregular(b, 80, 0.6, 6, 1)
	p := trace.Profiler(trace.New("k", b.Refs()), g)
	_, irregular, _, _ := p.CounterClasses(16)
	if irregular == 0 {
		t.Fatal("irregular variant produced no irregular set counters")
	}
}

func TestEvenOddPhasesOrdering(t *testing.T) {
	g := addrspace.DefaultGeometry()
	b := NewBuilder(g, 0, 1)
	EvenOddPhases(b, 2, 1, 1)
	refs := b.Refs()
	// First half must be even pages only, second half odd pages only.
	half := len(refs) / 2
	for i, p := range refs {
		even := uint64(p)%2 == 0
		if i < half && !even {
			t.Fatalf("ref %d (%v) is odd during even phase", i, p)
		}
		if i >= half && even {
			t.Fatalf("ref %d (%v) is even during odd phase", i, p)
		}
	}
	if trace.New("nw", refs).Footprint() != 2*16 {
		t.Fatalf("footprint = %d, want 32", trace.New("nw", refs).Footprint())
	}
}

func TestStridedRepetitiveTouchesOnlyStridePages(t *testing.T) {
	g := addrspace.DefaultGeometry()
	b := NewBuilder(g, 0, 1)
	StridedRepetitive(b, 4, 4, 3, 1)
	for _, p := range b.Refs() {
		if g.Offset(p)%4 != 0 {
			t.Fatalf("page %v at offset %d, want stride-4 offsets only", p, g.Offset(p))
		}
	}
	tr := trace.New("mvt", b.Refs())
	if tr.Footprint() != 4*4 {
		t.Fatalf("footprint = %d, want 16 (4 pages × 4 sets)", tr.Footprint())
	}
	for _, c := range tr.Counts() {
		if c != 3 {
			t.Fatalf("count = %d, want visits=3", c)
		}
	}
}

func TestRegionMovingLocality(t *testing.T) {
	g := addrspace.DefaultGeometry()
	b := NewBuilder(g, 0, 7)
	sets, regions := 40, 4
	RegionMoving(b, sets, regions, 3, 1)
	// Once the pattern leaves a region it never returns: the maximum region
	// index seen so far must be non-decreasing and earlier regions must not
	// reappear after a later one starts.
	per := sets / regions
	maxRegion := -1
	for i, p := range b.Refs() {
		r := int(g.SetOf(p)) / per
		if r > maxRegion {
			maxRegion = r
		}
		if r < maxRegion {
			t.Fatalf("ref %d revisits region %d after region %d started", i, r, maxRegion)
		}
	}
	if maxRegion != regions-1 {
		t.Fatalf("covered %d regions, want %d", maxRegion+1, regions)
	}
}

func TestFrontierWithThrashSweeps(t *testing.T) {
	g := addrspace.DefaultGeometry()
	b := NewBuilder(g, 0, 3)
	FrontierWithThrash(b, 64, 24, 8, 2, 1)
	tr := b.Build("bfs")
	if tr.Footprint() != 64*16 {
		t.Fatalf("footprint = %d, want %d", tr.Footprint(), 64*16)
	}
	// Early sets must be re-referenced late (the final sweep), producing the
	// large reuse distances that break LRU.
	fi := trace.BuildFutureIndex(tr)
	firstPage := g.FirstPage(0)
	lastUse := -1
	for pos := -1; ; {
		n, ok := fi.NextUse(firstPage, pos)
		if !ok {
			break
		}
		lastUse = n
		pos = n
	}
	if lastUse < tr.Len()*3/4 {
		t.Fatalf("first page's last use at %d/%d; expected a late full sweep", lastUse, tr.Len())
	}
}

func TestGEMMHasCyclicBRegion(t *testing.T) {
	a, _ := ByAbbr("GEM")
	tr := a.Generate()
	counts := tr.Counts()
	// B-region pages must be referenced ~8 times (once per block sweep);
	// streamed A pages ~2 (dups).
	var reusedPages int
	for _, c := range counts {
		if c >= 6 {
			reusedPages++
		}
	}
	if reusedPages < a.Pages()/2 {
		t.Fatalf("only %d pages heavily reused; GEM needs a dominant cyclic B region", reusedPages)
	}
}

func TestSRADHaloRetouch(t *testing.T) {
	a, _ := ByAbbr("SRD")
	tr := a.Generate()
	counts := tr.Counts()
	// Every interior page is touched 3×/pass (2 dups + 1 halo) over 4 passes.
	g := addrspace.DefaultGeometry()
	interior := g.PageAt(baseSet+5, 0)
	if counts[interior] != 4*3 {
		t.Fatalf("interior page count = %d, want 12", counts[interior])
	}
}

func TestBuilderOffsets(t *testing.T) {
	b := NewBuilder(addrspace.DefaultGeometry(), 0, 1)
	if got := b.EvenOffsets(); len(got) != 8 || got[0] != 0 || got[7] != 14 {
		t.Fatalf("EvenOffsets = %v", got)
	}
	if got := b.OddOffsets(); len(got) != 8 || got[0] != 1 || got[7] != 15 {
		t.Fatalf("OddOffsets = %v", got)
	}
	if got := b.StrideOffsets(4); !reflect.DeepEqual(got, []int{0, 4, 8, 12}) {
		t.Fatalf("StrideOffsets(4) = %v", got)
	}
}

func TestBuilderTouchMinimumOne(t *testing.T) {
	b := NewBuilder(addrspace.DefaultGeometry(), 0, 1)
	b.Touch(5, 0) // dups 0 still emits one reference
	if b.Len() != 1 {
		t.Fatalf("Touch(_, 0) emitted %d refs, want 1", b.Len())
	}
}

func TestGenerateWithGeometryPreservesPageFootprint(t *testing.T) {
	a, _ := ByAbbr("HOT")
	for _, shift := range []uint{3, 4, 5} {
		g := addrspace.NewGeometry(shift)
		tr := a.GenerateWithGeometry(g)
		if tr.Footprint() != a.Pages() {
			t.Errorf("shift %d: footprint %d, want %d", shift, tr.Footprint(), a.Pages())
		}
	}
}

func TestPatternTypeString(t *testing.T) {
	if PatternStreaming.String() != "Type I" || PatternRegionMoving.String() != "Type VI" {
		t.Fatal("PatternType.String mismatch")
	}
	if PatternType(99).String() == "" {
		t.Fatal("unknown pattern type renders empty")
	}
}

func BenchmarkGenerateCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, a := range Catalog() {
			a.Generate()
		}
	}
}

func TestGenNWAlternatesPhases(t *testing.T) {
	app, _ := ByAbbr("NW")
	tr := app.Generate()
	g := addrspace.DefaultGeometry()
	// The matrix region's first set: even pages must appear before any odd
	// page, and odd pages must appear again before the trace ends (E-O-E-O).
	first := g.PageAt(baseSet, 0)    // even page
	firstOdd := g.PageAt(baseSet, 1) // odd page
	counts := tr.Counts()
	if counts[first] == 0 || counts[firstOdd] == 0 {
		t.Fatal("matrix pages untouched")
	}
	// Even pages are touched in 2 iterations × 8 rounds = 16 times.
	if counts[first] != 16 {
		t.Fatalf("even matrix page touched %d times, want 16", counts[first])
	}
	if counts[firstOdd] != 16 {
		t.Fatalf("odd matrix page touched %d times, want 16", counts[firstOdd])
	}
	// Kernel barriers: 4 phases × 8 rounds.
	if len(tr.Barriers) < 30 {
		t.Fatalf("NW has %d barriers, want ~32", len(tr.Barriers))
	}
	// Scratch sets touch only 12 of 16 pages.
	matrix := app.Sets - 4*8*4
	scratchSet := baseSet + addrspace.SetID(matrix)
	touched := 0
	for off := 0; off < 16; off++ {
		if counts[g.PageAt(scratchSet, off)] > 0 {
			touched++
		}
	}
	if touched != 12 {
		t.Fatalf("scratch set touched %d pages, want 12", touched)
	}
}

func TestRegionMovingHotHeaderSpread(t *testing.T) {
	g := addrspace.DefaultGeometry()
	b := NewBuilder(g, 0, 9)
	RegionMovingHot(b, 80, 16, 2, 3, 1)
	refs := b.Refs()
	// Header sets (0..15) must be interleaved through each round, not
	// clustered: between consecutive header touches there should never be
	// more than ~a quarter of a round of region touches.
	lastHeaderPos := 0
	maxGap := 0
	for i, p := range refs {
		if int(g.SetOf(p)) < 16 {
			if gap := i - lastHeaderPos; gap > maxGap {
				maxGap = gap
			}
			lastHeaderPos = i
		}
	}
	roundLen := (32*16 + 16*12) // region sets + header pages per round
	if maxGap > roundLen/2 {
		t.Fatalf("header gap %d exceeds half a round (%d): touches clustered", maxGap, roundLen/2)
	}
	// Each round touches a random 12-of-16 subset of a header set, so
	// per-page counts end up uneven — the source of the irregular counters
	// that classify these apps onto LRU.
	counts := trace.New("t", refs).Counts()
	first := counts[g.PageAt(0, 0)]
	uneven := false
	for off := 1; off < 16; off++ {
		if counts[g.PageAt(0, off)] != first {
			uneven = true
			break
		}
	}
	if !uneven {
		t.Fatal("header page counts are uniform; want partial-subset unevenness")
	}
}

func TestRegionMovingHotPanicsOnBadHeader(t *testing.T) {
	b := NewBuilder(addrspace.DefaultGeometry(), 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("hotSets >= sets accepted")
		}
	}()
	RegionMovingHot(b, 10, 10, 2, 2, 1)
}

func TestFrontierWithThrashPanicsOnBadHot(t *testing.T) {
	b := NewBuilder(addrspace.DefaultGeometry(), 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("hotSets 0 accepted")
		}
	}()
	FrontierWithThrash(b, 10, 0, 2, 1, 1)
}

func TestBarrierDeduplication(t *testing.T) {
	b := NewBuilder(addrspace.DefaultGeometry(), 0, 1)
	b.TouchSet(0, 1)
	b.Barrier()
	b.Barrier() // collapses
	b.TouchSet(1, 1)
	b.Barrier()
	if got := len(b.Barriers()); got != 2 {
		t.Fatalf("barriers = %d, want 2 (double collapsed)", got)
	}
	tr := b.Build("t")
	// Trailing barrier at the very end is dropped by NewWithBarriers.
	if len(tr.Barriers) != 1 {
		t.Fatalf("trace barriers = %v, want only the interior one", tr.Barriers)
	}
}

package workload

import (
	"fmt"
	"hash/fnv"
	"sort"

	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

// App describes one Table II application: its identity, pattern type,
// footprint (in page sets), the compute intensity used by the GPU model, and
// the generator that produces its reference string.
type App struct {
	// Name is the full application name as the paper writes it.
	Name string
	// Abbr is the paper's abbreviation (Table II / figures x-axis).
	Abbr string
	// Suite is the benchmark suite: Rodinia, Parboil, or Polybench.
	Suite string
	// Pattern is the Fig. 2 access-pattern type.
	Pattern PatternType
	// Sets is the footprint in page sets (default geometry, 16 pages each).
	Sets int
	// ComputeGap is the number of compute cycles a warp spends between
	// memory accesses — the knob modelling arithmetic intensity.
	ComputeGap int

	gen func(b *Builder, sets int)
	// build, when non-nil, replaces the builder-based gen entirely: scenario
	// apps (phase schedules, co-located tenants, trace replays) assemble
	// their traces from multiple builders or a pre-loaded file. sets is the
	// current footprint in default-geometry page sets (so Scaled composes);
	// the hook owns any geometry conversion.
	build func(g addrspace.Geometry, sets int) *trace.Trace
}

// Pages returns the nominal footprint in pages.
func (a App) Pages() int { return a.Sets * addrspace.DefaultSetSize }

// FootprintBytes returns the nominal footprint in bytes.
func (a App) FootprintBytes() uint64 {
	return uint64(a.Pages()) * addrspace.PageBytes
}

// String renders the app for reports.
func (a App) String() string {
	return fmt.Sprintf("%s/%s (%s, %s, %d pages)", a.Suite, a.Abbr, a.Name, a.Pattern, a.Pages())
}

// seed derives a stable per-app seed from the abbreviation.
func (a App) seed() int64 {
	h := fnv.New64a()
	h.Write([]byte(a.Abbr))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// baseSet is where every workload's virtual allocation starts — page set
// 0x8000, echoing the paper's worked example.
const baseSet = addrspace.SetID(0x8000)

// Generate builds the app's canonical reference string.
func (a App) Generate() *trace.Trace {
	if a.build != nil {
		return a.build(addrspace.DefaultGeometry(), a.Sets)
	}
	b := NewBuilder(addrspace.DefaultGeometry(), baseSet, a.seed())
	a.gen(b, a.Sets)
	return b.Build(a.Abbr)
}

// Scaled returns a copy of the app with its footprint multiplied by the
// given factor: more page sets driven through the same generator, so the
// access pattern class is preserved while the reference string grows
// roughly linearly. The serving layer exposes this for scale studies
// beyond the paper's Table II geometries. Factors below 2 return the app
// unchanged.
func (a App) Scaled(scale int) App {
	if scale > 1 {
		a.Sets *= scale
	}
	return a
}

// GenerateWithGeometry builds the reference string under a non-default
// page-set geometry (used by the Fig. 7 page-set-size sensitivity study; the
// footprint in pages is preserved).
func (a App) GenerateWithGeometry(g addrspace.Geometry) *trace.Trace {
	if a.build != nil {
		// Scenario builds receive sets in default-geometry units and convert
		// internally, preserving the footprint in pages.
		return a.build(g, a.Sets)
	}
	pages := a.Pages()
	sets := pages / g.SetSize()
	b := NewBuilder(g, baseSet, a.seed())
	a.gen(b, sets)
	return b.Build(a.Abbr)
}

// Catalog returns the 23 applications of Table II, in suite/pattern order.
// Footprints are scaled versions of the paper's 3–130 MB range (long
// simulation times forced the authors to cap footprints too); KMN keeps the
// largest footprint, as the paper notes when costing classification.
func Catalog() []App {
	return []App{
		// ---- Type I: streaming --------------------------------------------
		{Name: "hotspot", Abbr: "HOT", Suite: "Rodinia", Pattern: PatternStreaming, Sets: 128, ComputeGap: 4,
			gen: func(b *Builder, sets int) { Streaming(b, sets, 2) }},
		{Name: "leukocyte", Abbr: "LEU", Suite: "Rodinia", Pattern: PatternStreaming, Sets: 96, ComputeGap: 10,
			gen: func(b *Builder, sets int) { Streaming(b, sets, 3) }},
		{Name: "cutcp", Abbr: "CUT", Suite: "Parboil", Pattern: PatternStreaming, Sets: 80, ComputeGap: 6,
			gen: func(b *Builder, sets int) { Streaming(b, sets, 2) }},
		{Name: "2DCONV", Abbr: "2DC", Suite: "Polybench", Pattern: PatternStreaming, Sets: 160, ComputeGap: 2,
			gen: func(b *Builder, sets int) { Streaming(b, sets, 2) }},
		// GEM streams matrix A / writes C while cyclically re-sweeping matrix
		// B; B's reuse distance sits near the 75% memory boundary, which is
		// why Fig. 3 shows LRU performing poorly on GEM alone among Type I.
		{Name: "GEMM", Abbr: "GEM", Suite: "Polybench", Pattern: PatternStreaming, Sets: 112, ComputeGap: 3,
			gen: genGEMM},

		// ---- Type II: thrashing -------------------------------------------
		// SRD is a stencil: each sweep re-touches the previous set (halo
		// rows), giving first-fill counters of 2× set size (still small and
		// regular).
		{Name: "srad_v2", Abbr: "SRD", Suite: "Rodinia", Pattern: PatternThrashing, Sets: 128, ComputeGap: 3,
			gen: genSRAD},
		{Name: "hotspot3D", Abbr: "HSD", Suite: "Rodinia", Pattern: PatternThrashing, Sets: 144, ComputeGap: 2,
			gen: func(b *Builder, sets int) { Thrashing(b, sets, 6, 2) }},
		{Name: "mri-q", Abbr: "MRQ", Suite: "Parboil", Pattern: PatternThrashing, Sets: 96, ComputeGap: 8,
			gen: func(b *Builder, sets int) { Thrashing(b, sets, 4, 3) }},
		{Name: "stencil", Abbr: "STN", Suite: "Parboil", Pattern: PatternThrashing, Sets: 64, ComputeGap: 3,
			gen: func(b *Builder, sets int) { Thrashing(b, sets, 5, 2) }},

		// ---- Type III: part repetitive ------------------------------------
		{Name: "pathfinder", Abbr: "PAT", Suite: "Rodinia", Pattern: PatternPartRepetitive, Sets: 112, ComputeGap: 3,
			gen: func(b *Builder, sets int) { PartRepetitive(b, sets, 0.25, 40, 2) }},
		{Name: "dwt2d", Abbr: "DWT", Suite: "Rodinia", Pattern: PatternPartRepetitive, Sets: 96, ComputeGap: 4,
			gen: func(b *Builder, sets int) { PartRepetitive(b, sets, 0.35, 36, 2) }},
		{Name: "backprop", Abbr: "BKP", Suite: "Rodinia", Pattern: PatternPartRepetitive, Sets: 128, ComputeGap: 3,
			gen: func(b *Builder, sets int) { PartRepetitive(b, sets, 0.30, 48, 2) }},
		// KMN and SAD revisit partial sets: irregular counters, the two
		// ratio₁ outliers of Fig. 9, classified irregular#2.
		{Name: "kmeans", Abbr: "KMN", Suite: "Rodinia", Pattern: PatternPartRepetitive, Sets: 512, ComputeGap: 2,
			gen: func(b *Builder, sets int) { PartRepetitiveIrregular(b, sets, 0.5, 96, 1) }},
		{Name: "sad", Abbr: "SAD", Suite: "Parboil", Pattern: PatternPartRepetitive, Sets: 160, ComputeGap: 2,
			gen: func(b *Builder, sets int) { PartRepetitiveIrregular(b, sets, 0.6, 48, 2) }},

		// ---- Type IV: most repetitive -------------------------------------
		// NW touches even pages then odd pages of each set in separate
		// phases — the motivating case for HPE's page-set division.
		{Name: "nw", Abbr: "NW", Suite: "Rodinia", Pattern: PatternMostRepetitive, Sets: 278, ComputeGap: 2,
			gen: genNW},
		// BFS interleaves frontier expansion with full re-sweeps of the
		// visited region — the embedded thrashing pattern that makes pure
		// LRU catastrophic (§IV-E).
		{Name: "bfs", Abbr: "BFS", Suite: "Rodinia", Pattern: PatternMostRepetitive, Sets: 256, ComputeGap: 1,
			gen: func(b *Builder, sets int) { FrontierWithThrash(b, sets, 96, 10, 3, 1) }},
		// MVT touches pages with an address stride of 4, wasting HIR entry
		// space (only 4 of 16 counters used per entry).
		{Name: "MVT", Abbr: "MVT", Suite: "Polybench", Pattern: PatternMostRepetitive, Sets: 256, ComputeGap: 2,
			gen: func(b *Builder, sets int) { StridedRepetitive(b, sets, 4, 4, 2) }},

		// ---- Type V: repetitive-thrashing ---------------------------------
		{Name: "heartwall", Abbr: "HWL", Suite: "Rodinia", Pattern: PatternRepetitiveThrashing, Sets: 96, ComputeGap: 5,
			gen: func(b *Builder, sets int) {
				RepetitiveThrashing(b, sets, 3, func(s int) int { return 1 + s%3 }, 2)
			}},
		// SGM has uniform per-set visit counts (small ratio₁) and a partly
		// Type-II-like sweep — the Fig. 9 outlier classified regular.
		{Name: "sgemm", Abbr: "SGM", Suite: "Parboil", Pattern: PatternRepetitiveThrashing, Sets: 80, ComputeGap: 4,
			gen: func(b *Builder, sets int) {
				RepetitiveThrashing(b, sets, 3, func(s int) int { return 1 }, 2)
			}},
		{Name: "histo", Abbr: "HIS", Suite: "Parboil", Pattern: PatternRepetitiveThrashing, Sets: 192, ComputeGap: 2,
			gen: func(b *Builder, sets int) { RepetitiveThrashingIrregular(b, sets, 2, 96, 1) }},
		{Name: "spmv", Abbr: "SPV", Suite: "Parboil", Pattern: PatternRepetitiveThrashing, Sets: 160, ComputeGap: 2,
			gen: func(b *Builder, sets int) { RepetitiveThrashingIrregular(b, sets, 2, 96, 1) }},

		// ---- Type VI: region moving ---------------------------------------
		{Name: "b+tree", Abbr: "B+T", Suite: "Rodinia", Pattern: PatternRegionMoving, Sets: 132, ComputeGap: 3,
			gen: func(b *Builder, sets int) { RegionMovingHot(b, sets, 24, 3, 4, 1) }},
		{Name: "hybridsort", Abbr: "HYB", Suite: "Rodinia", Pattern: PatternRegionMoving, Sets: 144, ComputeGap: 2,
			gen: func(b *Builder, sets int) { RegionMovingHot(b, sets, 24, 3, 4, 2) }},
	}
}

// genGEMM builds GEM: 8 row-blocks; each block streams a slice of A and then
// sweeps all of B. B is 80 of the 112 sets, so its cyclic reuse distance
// (~83 sets) exceeds the 50% memory size and brushes the 75% one.
func genGEMM(b *Builder, sets int) {
	bSets := sets * 5 / 7 // matrix B
	aSets := sets - bSets - sets/14
	cSets := sets - bSets - aSets
	blocks := 8
	aPer := max(1, aSets/blocks)
	for blk := 0; blk < blocks; blk++ {
		from := blk * aPer
		if from >= aSets {
			from = aSets - 1
		}
		b.Sweep(from, min(aPer, aSets-from), 2) // stream a slice of A
		b.Sweep(aSets, bSets, 1)                // sweep all of B
		if cSets > 0 {
			b.TouchSet(aSets+bSets+blk%cSets, 2) // write C block
		}
		b.Barrier() // one kernel launch per row-block
	}
}

// genSRAD builds SRD: 4 sweeps; each step touches set i and re-touches the
// stencil halo (set i-1).
func genSRAD(b *Builder, sets int) {
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < sets; i++ {
			b.TouchSet(i, 2)
			if i > 0 {
				b.TouchSet(i-1, 1)
			}
		}
		b.Barrier()
	}
}

// genNW builds NW: a score matrix (88 sets) whose even and odd pages are
// touched on alternating phases (E-O-E-O, six kernel rounds each) — the
// behaviour that motivates HPE's page-set division (§IV-C): an undivided set
// looks hot whenever either half is touched, so its cold half can never age
// out. Each round also streams a fresh batch of partially-touched input sets
// (the sequence arrays), which keeps faults (and therefore HIR drains)
// flowing and gives the chain the irregular census that classifies NW
// irregular#2 (the paper has NW on LRU throughout).
func genNW(b *Builder, sets int) {
	const rounds = 8                 // 8 rounds × 8 even pages drive the counter to the 64 cap within one phase
	matrix := sets - 4*rounds*4      // the rest streams in as input sets
	perRound := 4                    // fresh input sets per round — small, so phase swaps squeeze the matrix
	partial := b.g.SetSize() * 3 / 4 // input sets touch only 12 of 16 pages
	scratchBase := matrix
	phase := func(offsets []int) {
		for v := 0; v < rounds; v++ {
			for s := 0; s < matrix; s++ {
				b.TouchSetOffsets(s, offsets, 1)
				if s%(matrix/max(1, perRound)+1) == 0 && scratchBase < sets {
					b.TouchSetOffsets(scratchBase, b.Shuffled(b.g.SetSize())[:partial], 1)
					scratchBase++
				}
			}
			b.Barrier()
		}
	}
	for iter := 0; iter < 2; iter++ {
		phase(b.EvenOffsets())
		phase(b.OddOffsets())
	}
}

// ByAbbr returns the catalog application with the given abbreviation.
func ByAbbr(abbr string) (App, bool) {
	for _, a := range Catalog() {
		if a.Abbr == abbr {
			return a, true
		}
	}
	return App{}, false
}

// ByPattern returns the catalog applications with the given pattern type,
// preserving catalog order.
func ByPattern(p PatternType) []App {
	var out []App
	for _, a := range Catalog() {
		if a.Pattern == p {
			out = append(out, a)
		}
	}
	return out
}

// Abbrs returns all catalog abbreviations in catalog order.
func Abbrs() []string {
	var out []string
	for _, a := range Catalog() {
		out = append(out, a.Abbr)
	}
	return out
}

// PatternTypes returns the pattern types present in the catalog, ascending.
func PatternTypes() []PatternType {
	seen := map[PatternType]bool{}
	for _, a := range Catalog() {
		seen[a.Pattern] = true
	}
	var out []PatternType
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

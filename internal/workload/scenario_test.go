package workload

import (
	"reflect"
	"strings"
	"testing"

	"hpe/internal/addrspace"
)

func TestParsePhasesCanonical(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"HOT:32,HSD:96,HOT:32", "HOT:32,HSD:96,HOT:32"},
		{"hot:32", "HOT:32"},
		{" hot : 32 ", "HOT:32"},   // whitespace trimmed... see below
		{"HOT:128:4", "HOT"},       // explicit catalog defaults fold away
		{"HOT:128", "HOT"},         // sets default folds
		{"HOT:64:4", "HOT:64"},     // default gap folds
		{"HOT:128:2", "HOT:128:2"}, // non-default gap keeps explicit sets
		{"STNx1", "STN"},           // x1 folds
		{"STNx2,STN:16x2,STNx2", "STNx2,STN:16x2,STNx2"},
		{"b+t:40", "B+T:40"},
	}
	for _, c := range cases {
		ps, err := ParsePhases(c.in)
		if err != nil {
			t.Errorf("ParsePhases(%q): %v", c.in, err)
			continue
		}
		if got := ps.Canonical(); got != c.want {
			t.Errorf("ParsePhases(%q).Canonical() = %q, want %q", c.in, got, c.want)
		}
		// Canonicalization is idempotent.
		ps2, err := ParsePhases(ps.Canonical())
		if err != nil || ps2.Canonical() != ps.Canonical() {
			t.Errorf("canonical %q not idempotent: %v", ps.Canonical(), err)
		}
	}
}

func TestParsePhasesRejects(t *testing.T) {
	for _, in := range []string{
		"", ",", "NOPE", "HOT:0", "HOT:9999", "HOT:64:-1", "HOT:64:9999",
		"HOTx0", "HOTx999", "HOT:1:2:3", "HOT:a", "HOTxa",
		"BFS:64", "NW:64", "B+T:16", // below the generators' structural floors
		strings.Repeat("HOT,", 40) + "HOT",
	} {
		if _, err := ParsePhases(in); err == nil {
			t.Errorf("ParsePhases(%q) accepted", in)
		}
	}
}

func TestPhaseScheduleGenerate(t *testing.T) {
	ps, err := ParsePhases("HOT:16,HSD:32,HOT:16")
	if err != nil {
		t.Fatal(err)
	}
	app := ps.App()
	tr := app.Generate()
	tr2 := app.Generate()
	if !reflect.DeepEqual(tr.Refs, tr2.Refs) || !reflect.DeepEqual(tr.Segments, tr2.Segments) {
		t.Fatal("phase generation not deterministic")
	}
	if len(tr.Segments) != 3 {
		t.Fatalf("got %d segments, want 3", len(tr.Segments))
	}
	// Phases carry their apps' compute gaps (HOT=4, HSD=2).
	wantGaps := []int{4, 2, 4}
	for i, seg := range tr.Segments {
		if seg.Phase != i || seg.Gap != wantGaps[i] {
			t.Errorf("segment %d = %+v, want phase %d gap %d", i, seg, i, wantGaps[i])
		}
	}
	// Phases overlap one address region: footprint is the max phase's, not
	// the sum (32 sets), and never exceeds the app's nominal pages.
	if app.Sets != 32 {
		t.Errorf("schedule app Sets = %d, want 32", app.Sets)
	}
	if fp := tr.Footprint(); fp > app.Pages() {
		t.Errorf("footprint %d exceeds nominal %d", fp, app.Pages())
	}
	// The shrink phase re-touches pages the grow phase owned.
	g := addrspace.DefaultGeometry()
	lo := g.FirstPage(baseSet)
	for i, p := range tr.Refs {
		if p < lo || p >= lo+addrspace.PageID(app.Pages()) {
			t.Fatalf("ref %d = %v outside the shared region", i, p)
		}
	}
}

func TestPhaseScheduleScaled(t *testing.T) {
	ps, err := ParsePhases("HOT:16,HOT:32")
	if err != nil {
		t.Fatal(err)
	}
	base := ps.App()
	scaled := base.Scaled(2)
	if scaled.Sets != 64 {
		t.Fatalf("scaled Sets = %d, want 64", scaled.Sets)
	}
	tr := scaled.Generate()
	if fp, nominal := tr.Footprint(), base.Generate().Footprint(); fp <= nominal {
		t.Errorf("scaled footprint %d not larger than nominal %d", fp, nominal)
	}
}

func TestParseTenantsCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"HSD,BFS", "HSD,BFS"},
		{"hsd, bfs", "HSD,BFS"},
		{"HOT,NWx2", "HOT,NWx2"},
		{"HOTx1,NW", "HOT,NW"},
		{"b+t,hot", "B+T,HOT"},
	}
	for _, c := range cases {
		co, err := ParseTenants(c.in)
		if err != nil {
			t.Errorf("ParseTenants(%q): %v", c.in, err)
			continue
		}
		if got := co.Canonical(); got != c.want {
			t.Errorf("ParseTenants(%q).Canonical() = %q, want %q", c.in, got, c.want)
		}
	}
	for _, in := range []string{"", "HSD", "HSD,BFS,HOT,NW,PAT", "HSD,NOPE", "HSDx0,BFS", "HSDx99,BFS"} {
		if _, err := ParseTenants(in); err == nil {
			t.Errorf("ParseTenants(%q) accepted", in)
		}
	}
}

func TestColocationGenerate(t *testing.T) {
	co, err := ParseTenants("HSD,BFS")
	if err != nil {
		t.Fatal(err)
	}
	app := co.App(512)
	tr := app.Generate()
	tr2 := app.Generate()
	if !reflect.DeepEqual(tr.Refs, tr2.Refs) {
		t.Fatal("colocation generation not deterministic")
	}
	if len(tr.Tenants) != 2 {
		t.Fatalf("got %d tenant ranges, want 2", len(tr.Tenants))
	}
	if tr.Tenants[0].Name != "HSD" || tr.Tenants[1].Name != "BFS" {
		t.Fatalf("tenant names %q/%q", tr.Tenants[0].Name, tr.Tenants[1].Name)
	}
	// Ranges are disjoint and cover every reference.
	if tr.Tenants[0].Hi > tr.Tenants[1].Lo {
		t.Fatal("tenant ranges overlap")
	}
	counts := make([]int, 2)
	for i, p := range tr.Refs {
		ten := tr.TenantOf(p)
		if ten < 0 {
			t.Fatalf("ref %d = %v outside every tenant range", i, p)
		}
		counts[ten]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("tenant reference counts %v: both tenants must appear", counts)
	}
	// The interleave quantum holds: within each segment all refs belong to
	// the segment's tenant, and no segment of a live round exceeds the
	// quantum.
	for si, seg := range tr.Segments {
		end := tr.Len()
		if si+1 < len(tr.Segments) {
			end = tr.Segments[si+1].Start
		}
		for _, p := range tr.Refs[seg.Start:end] {
			if tr.TenantOf(p) != seg.Phase {
				t.Fatalf("segment %d (tenant %d) contains foreign ref", si, seg.Phase)
			}
		}
	}
	// Kernel barriers are dropped: co-located processes don't synchronise.
	if len(tr.Barriers) != 0 {
		t.Fatalf("colocated trace has %d barriers, want 0", len(tr.Barriers))
	}
	// Different interleave quanta produce different reference strings — and
	// distinct cache identities.
	other := co.App(128)
	if other.Abbr == app.Abbr {
		t.Fatal("interleave not part of the app identity")
	}
	if reflect.DeepEqual(other.Generate().Refs, tr.Refs) {
		t.Fatal("interleave quantum did not change the interleaving")
	}
}

func TestFromTrace(t *testing.T) {
	src, err := ParsePhases("HOT:16")
	if err != nil {
		t.Fatal(err)
	}
	tr := src.App().Generate()
	app := FromTrace("/tmp/x.hpet", tr)
	if app.Abbr != "trace:/tmp/x.hpet" || app.Pattern != PatternTrace {
		t.Fatalf("unexpected app identity %q/%v", app.Abbr, app.Pattern)
	}
	if got := app.Generate(); got != tr {
		t.Fatal("FromTrace app must return the wrapped trace")
	}
	if app.Sets < 1 || app.Pages() < tr.Footprint() {
		t.Fatalf("Sets %d does not cover footprint %d", app.Sets, tr.Footprint())
	}
}

func TestScenarioPresetsParse(t *testing.T) {
	names := map[string]bool{}
	for _, sc := range Scenarios() {
		if names[sc.Name] {
			t.Errorf("duplicate scenario %q", sc.Name)
		}
		names[sc.Name] = true
		if (sc.Phases == "") == (sc.Tenants == "") {
			t.Errorf("scenario %q must set exactly one of Phases/Tenants", sc.Name)
		}
		if sc.Phases != "" {
			ps, err := ParsePhases(sc.Phases)
			if err != nil {
				t.Errorf("scenario %q: %v", sc.Name, err)
			} else if ps.Canonical() != sc.Phases {
				t.Errorf("scenario %q phases %q not canonical (want %q)", sc.Name, sc.Phases, ps.Canonical())
			}
		}
		if sc.Tenants != "" {
			co, err := ParseTenants(sc.Tenants)
			if err != nil {
				t.Errorf("scenario %q: %v", sc.Name, err)
			} else if co.Canonical() != sc.Tenants {
				t.Errorf("scenario %q tenants %q not canonical (want %q)", sc.Name, sc.Tenants, co.Canonical())
			}
		}
		if _, ok := ScenarioByName(sc.Name); !ok {
			t.Errorf("ScenarioByName(%q) missing", sc.Name)
		}
	}
}

// FuzzPhaseSchedule fuzzes the schedule grammar end to end: parsing and
// canonicalization never panic, the canonical form is a fixed point, and —
// for schedules small enough to generate — the assembled trace's reference
// count equals the sum of its phases' independent generations (phases draw
// from independent RNG streams, so concatenation must be lossless).
func FuzzPhaseSchedule(f *testing.F) {
	for _, sc := range Scenarios() {
		if sc.Phases != "" {
			f.Add(sc.Phases)
		}
	}
	f.Add("HOT:16,HSD:32,HOT:16")
	f.Add("STNx2,STN:16x2")
	f.Add("b+t:32, hot:8:0 x2")
	f.Add("KMN:4,NW:132,GEM:4")
	f.Add("HOT:64:9x3")
	f.Fuzz(func(t *testing.T, s string) {
		ps, err := ParsePhases(s)
		if err != nil {
			return // malformed input rejected: fine
		}
		canon := ps.Canonical()
		ps2, err := ParsePhases(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if ps2.Canonical() != canon {
			t.Fatalf("canonicalize not idempotent: %q -> %q", canon, ps2.Canonical())
		}
		// Generation cost scales with Σ sets×repeat; cap it so the fuzzer
		// spends its budget on the grammar, not on giant traces.
		work := 0
		for _, p := range ps.Phases() {
			work += p.Sets * p.Repeat
		}
		if work > 768 {
			return
		}
		app := ps.App()
		tr := app.Generate()
		if tr.Len() == 0 {
			t.Fatal("schedule generated an empty trace")
		}
		if len(tr.Segments) == 0 || len(tr.Segments) > len(ps.Phases()) {
			t.Fatalf("%d segments for %d phases", len(tr.Segments), len(ps.Phases()))
		}
		// Total references match the schedule sum: each phase regenerated
		// standalone with its schedule seed contributes exactly its segment.
		g := addrspace.DefaultGeometry()
		sum := 0
		for i, p := range ps.Phases() {
			sum += p.generate(g, scenarioSeed(canon, i), 1).Len()
		}
		if tr.Len() != sum {
			t.Fatalf("trace has %d refs, schedule sum is %d", tr.Len(), sum)
		}
		// Determinism across calls.
		if tr2 := app.Generate(); !reflect.DeepEqual(tr.Refs, tr2.Refs) {
			t.Fatal("schedule generation not deterministic")
		}
	})
}

// Shape tests: the paper's qualitative claims expressed as assertions over
// the quick application subset. These are the reproduction's contract — see
// DESIGN.md §6 — and intentionally assert bands, not point values: our
// substrate is a from-scratch simulator, so orderings and rough factors are
// the reproducible signal, absolute numbers are not.
package hpe_test

import (
	"testing"

	"hpe"
	"hpe/internal/experiments"
)

// sharedSuite is reused across shape tests (the Suite caches runs).
var sharedSuite = experiments.NewSuite(experiments.Options{Quick: true, Seed: 1})

func metric(t *testing.T, rep experiments.Report, key string) float64 {
	t.Helper()
	v, ok := rep.Metrics[key]
	if !ok {
		t.Fatalf("%s: metric %q missing (have %d metrics)", rep.ID, key, len(rep.Metrics))
	}
	return v
}

func TestShapeFig10HPEBeatsLRUOnAverage(t *testing.T) {
	rep := sharedSuite.Fig10()
	m75, m50 := metric(t, rep, "mean75"), metric(t, rep, "mean50")
	// Paper: 1.34x @75%, 1.16x @50%. Band: clearly above parity, below 2x.
	if m75 < 1.10 || m75 > 2.0 {
		t.Errorf("geomean speedup @75%% = %.3f, want within [1.10, 2.0] (paper 1.34)", m75)
	}
	if m50 < 1.05 || m50 > 1.8 {
		t.Errorf("geomean speedup @50%% = %.3f, want within [1.05, 1.8] (paper 1.16)", m50)
	}
	// The paper's trend: larger gains at 75% than at 50%.
	if m75 <= m50 {
		t.Errorf("speedup @75%% (%.3f) should exceed @50%% (%.3f)", m75, m50)
	}
	// The headline max comes from a Type II app and exceeds 1.5x.
	if mx := metric(t, rep, "max75"); mx < 1.5 {
		t.Errorf("max speedup @75%% = %.2f, want > 1.5 (paper 2.81, HSD)", mx)
	}
}

func TestShapeFig10PerPattern(t *testing.T) {
	rep := sharedSuite.Fig10()
	// Type I parity: HOT within 2% of LRU.
	if v := metric(t, rep, "speedup75/HOT"); v < 0.98 || v > 1.02 {
		t.Errorf("HOT speedup = %.3f, want parity with LRU on streaming", v)
	}
	// Type II: big wins.
	for _, abbr := range []string{"HSD", "STN"} {
		if v := metric(t, rep, "speedup75/"+abbr); v < 1.4 {
			t.Errorf("%s speedup @75%% = %.3f, want > 1.4 (LRU-averse Type II)", abbr, v)
		}
	}
	// BFS: dynamic adjustment rescues it.
	if v := metric(t, rep, "speedup75/BFS"); v < 1.3 {
		t.Errorf("BFS speedup = %.3f, want > 1.3", v)
	}
	// Type VI: near parity (paper: HPE performs similarly to LRU; slight
	// deficit from HIR order loss is expected).
	if v := metric(t, rep, "speedup75/B+T"); v < 0.9 || v > 1.1 {
		t.Errorf("B+T speedup = %.3f, want within [0.9, 1.1]", v)
	}
}

func TestShapeFig11EvictionReduction(t *testing.T) {
	rep := sharedSuite.Fig11()
	// Paper: 18% fewer evictions @75%, 12% @50%. Band: 5–40% fewer.
	for _, rate := range []string{"75", "50"} {
		m := metric(t, rep, "mean"+rate)
		if m < 0.60 || m > 0.95 {
			t.Errorf("mean eviction ratio @%s%% = %.3f, want within [0.60, 0.95]", rate, m)
		}
	}
}

func TestShapeFig12HPEBeatsEveryBaseline(t *testing.T) {
	rep := sharedSuite.Fig12()
	for _, rate := range []string{"75", "50"} {
		hpePerf := metric(t, rep, "perf"+rate+"/HPE")
		for _, base := range []string{"LRU", "Random", "RRIP", "CLOCK-Pro"} {
			bp := metric(t, rep, "perf"+rate+"/"+base)
			if hpePerf < bp {
				t.Errorf("@%s%%: HPE perf %.3f below %s %.3f", rate, hpePerf, base, bp)
			}
		}
		// HPE within 25% of Ideal (paper: 11%).
		if hpePerf < 0.75 {
			t.Errorf("@%s%%: HPE at %.3f of Ideal, want >= 0.75", rate, hpePerf)
		}
		// Nothing beats Ideal.
		for _, p := range []string{"LRU", "Random", "RRIP", "CLOCK-Pro", "HPE"} {
			if v := metric(t, rep, "ev"+rate+"/"+p); v < 0.999 {
				t.Errorf("@%s%%: %s evicts %.3f of Ideal — MIN optimality violated", rate, p, v)
			}
		}
	}
}

func TestShapeFig3RRIPAndLRUWeaknesses(t *testing.T) {
	rep := sharedSuite.Fig3()
	// LRU thrashes on Type II: well above Ideal.
	for _, abbr := range []string{"HSD", "STN"} {
		if v := metric(t, rep, "lru/"+abbr); v < 2.0 {
			t.Errorf("LRU/%s = %.2f, want > 2 (cyclic thrash)", abbr, v)
		}
		// RRIP's distant insertion + delay fares much better there.
		lru, rrip := metric(t, rep, "lru/"+abbr), metric(t, rep, "rrip/"+abbr)
		if rrip >= lru {
			t.Errorf("%s: RRIP (%.2f) should beat LRU (%.2f) on Type II", abbr, rrip, lru)
		}
	}
	// Type VI: RRIP performs worse than LRU (paper observation 3).
	lru, rrip := metric(t, rep, "lru/B+T"), metric(t, rep, "rrip/B+T")
	if rrip <= lru {
		t.Errorf("B+T: RRIP (%.2f) should lose to LRU (%.2f) on region-moving", rrip, lru)
	}
}

func TestShapeFig9Classifications(t *testing.T) {
	rep := sharedSuite.Fig9()
	want := map[string]float64{
		"HOT": 1, "HSD": 1, "STN": 1, "PAT": 1, "SGM": 1, // regular
		"KMN": 3, "NW": 3, // irregular#2
	}
	for abbr, cat := range want {
		if v := metric(t, rep, "category/"+abbr); v != cat {
			t.Errorf("%s classified category=%v, want %v", abbr, v, cat)
		}
	}
	// B+T must land in an irregular class (either starts it on LRU, which is
	// the behaviour the paper reports for Type VI).
	if v := metric(t, rep, "category/B+T"); v != 2 && v != 3 {
		t.Errorf("B+T classified category=%v, want irregular#1 or irregular#2", v)
	}
}

func TestShapeFig13AdjustmentStories(t *testing.T) {
	rep := sharedSuite.Fig13()
	// BFS: starts LRU, switches to MRU-C (the paper's misclassification
	// rescue story) — at least one switch, and MRU-C share dominant later.
	if v := metric(t, rep, "switches75/BFS"); v < 1 {
		t.Error("BFS did not switch strategies at 75%")
	}
	// KMN stays on LRU throughout.
	if v := metric(t, rep, "switches75/KMN"); v != 0 {
		t.Errorf("KMN switched %v times, want 0 (LRU throughout)", v)
	}
	if v := metric(t, rep, "lruShare75/KMN"); v < 0.99 {
		t.Errorf("KMN LRU share = %.2f, want 1.0", v)
	}
}

func TestShapeSensitivityFlatness(t *testing.T) {
	// Figs. 7–8: parameter variants stay within a modest band.
	if v := metric(t, sharedSuite.Fig7(), "maxSpread"); v > 0.15 {
		t.Errorf("page-set-size spread = %.1f%%, want <= 15%% (paper ~10%%)", v*100)
	}
	if v := metric(t, sharedSuite.Fig8(), "maxSpread"); v > 0.25 {
		t.Errorf("interval-length spread = %.1f%%, want <= 25%% (paper ~12%%)", v*100)
	}
}

func TestShapeOverheads(t *testing.T) {
	rep := sharedSuite.Overheads()
	// HIR storage is exactly the paper's 10 KB.
	if v := metric(t, rep, "hirBytes"); v != 10240 {
		t.Errorf("HIR storage = %v bytes, want 10240", v)
	}
	// Classification completes within the fault penalty (paper: 16.7 µs of
	// a 20 µs budget) — generous 200 µs bound for slow CI machines.
	if v := metric(t, rep, "classifyUS"); v <= 0 || v > 200 {
		t.Errorf("classification took %.1f us, want (0, 200]", v)
	}
	// HPE's host load stays in the same band as the baselines': HIR
	// transfers add load, fewer faults repay it (the paper's §V-C argument).
	lru, hp := metric(t, rep, "load75/LRU"), metric(t, rep, "load75/HPE")
	if hp < lru*0.85 || hp > lru*1.5 {
		t.Errorf("HPE load %.3f outside [0.85, 1.5]x LRU's %.3f", hp, lru)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// The README quickstart, as a test.
	app, ok := hpe.WorkloadByAbbr("HSD")
	if !ok {
		t.Fatal("HSD missing")
	}
	tr := app.Generate()
	capacity := tr.Footprint() * 75 / 100
	cfg := hpe.SystemConfig(capacity)
	lru := hpe.Simulate(cfg, tr, hpe.NewLRU())
	hp := hpe.SimulateHPE(cfg, tr, hpe.DefaultHPEConfig())
	if hp.IPC <= lru.IPC {
		t.Fatalf("quickstart regression: HPE IPC %.5f <= LRU %.5f", hp.IPC, lru.IPC)
	}
	st, ok := hpe.HPEStatsOf(hp)
	if !ok || !st.Classified {
		t.Fatal("HPE stats missing from result")
	}
	if _, ok := hpe.HPEStatsOf(lru); ok {
		t.Fatal("LRU result claims HPE stats")
	}
	if len(hpe.Workloads()) != 23 {
		t.Fatalf("catalog size %d", len(hpe.Workloads()))
	}
	if len(hpe.ExperimentIDs()) != 25 {
		t.Fatalf("experiment count %d", len(hpe.ExperimentIDs()))
	}
	rr := hpe.Replay(tr, hpe.NewIdeal(tr), capacity)
	if rr.Faults == 0 || rr.Faults > uint64(tr.Len()) {
		t.Fatalf("replay faults = %d", rr.Faults)
	}
}

func TestDivisionAblationHelpsNW(t *testing.T) {
	// With division disabled, NW must do no better (usually worse) than
	// with it enabled, at 50% oversubscription.
	app, _ := hpe.WorkloadByAbbr("NW")
	tr := app.Generate()
	capacity := tr.Footprint() / 2
	on := hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, hpe.DefaultHPEConfig())
	cfg := hpe.DefaultHPEConfig()
	cfg.DisableDivision = true
	off := hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, cfg)
	if st, _ := hpe.HPEStatsOf(on); st.Divisions == 0 {
		t.Fatal("NW did not divide any page sets")
	}
	if st, _ := hpe.HPEStatsOf(off); st.Divisions != 0 {
		t.Fatal("DisableDivision did not disable division")
	}
	if on.Faults > off.Faults {
		t.Errorf("division hurt NW: %d faults with vs %d without", on.Faults, off.Faults)
	}
}

func TestFacadeConstructors(t *testing.T) {
	app, _ := hpe.WorkloadByAbbr("STN")
	tr := app.Generate()
	capacity := tr.Footprint() * 3 / 4
	pols := []hpe.Policy{
		hpe.NewFIFO(), hpe.NewLFU(), hpe.NewRandom(3),
		hpe.NewRRIP(hpe.DefaultRRIPConfig()), hpe.NewRRIP(hpe.ThrashingRRIPConfig()),
		hpe.NewClockPro(capacity), hpe.NewHPE(hpe.DefaultHPEConfig()),
	}
	for _, pol := range pols {
		res := hpe.Replay(tr, pol, capacity)
		if res.Faults == 0 || res.Hits+res.Faults != uint64(tr.Len()) {
			t.Errorf("%s: bad replay result %+v", pol.Name(), res)
		}
	}
	if hpe.NewSuite(hpe.SuiteOptions{Quick: true}) == nil {
		t.Fatal("NewSuite returned nil")
	}
}

package hpe_test

import (
	"testing"

	"hpe"
)

// TestCatalogContract pins each Table II application's calibrated behaviour
// under the full HPE configuration at 75% oversubscription: classification
// category, initial strategy, and the qualitative HPE-vs-LRU outcome. These
// are the workload-calibration decisions EXPERIMENTS.md documents; a change
// to a generator or to HPE that silently flips one of them fails here.
func TestCatalogContract(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog contract skipped in -short mode")
	}
	type contract struct {
		category string // expected classification at 75%
		strategy string // initial strategy implied by the category
		// band bounds HPE's IPC speedup over LRU at 75%.
		minSpeedup, maxSpeedup float64
	}
	contracts := map[string]contract{
		// Type I: parity with LRU.
		"HOT": {"regular", "MRU-C", 0.99, 1.01},
		"LEU": {"regular", "MRU-C", 0.99, 1.01},
		"CUT": {"regular", "MRU-C", 0.99, 1.01},
		"2DC": {"regular", "MRU-C", 0.99, 1.01},
		"GEM": {"regular", "MRU-C", 0.99, 1.30},
		// Type II: the headline wins.
		"SRD": {"regular", "MRU-C", 1.6, 3.0},
		"HSD": {"regular", "MRU-C", 1.8, 3.0},
		"MRQ": {"regular", "MRU-C", 1.5, 3.0},
		"STN": {"regular", "MRU-C", 1.5, 3.0},
		// Type III: near parity (paper: slight wins; ours a hair either side).
		"PAT": {"regular", "MRU-C", 0.9, 1.1},
		"DWT": {"regular", "MRU-C", 0.9, 1.1},
		"BKP": {"regular", "MRU-C", 0.9, 1.1},
		"KMN": {"irregular#2", "LRU", 0.95, 1.05},
		"SAD": {"irregular#2", "LRU", 0.95, 1.15},
		// Type IV.
		"NW":  {"irregular#2", "LRU", 0.9, 1.1},
		"BFS": {"irregular#1", "LRU", 1.3, 2.5},
		"MVT": {"irregular#2", "LRU", 0.9, 2.2},
		// Type V.
		"HWL": {"regular", "MRU-C", 1.3, 2.2},
		"SGM": {"regular", "MRU-C", 1.3, 2.2},
		"HIS": {"irregular#2", "LRU", 1.0, 1.5},
		"SPV": {"irregular#2", "LRU", 1.0, 1.6},
		// Type VI: parity, LRU start.
		"B+T": {"irregular#2", "LRU", 0.93, 1.1},
		"HYB": {"irregular#1", "LRU", 0.93, 1.1},
	}
	for _, app := range hpe.Workloads() {
		want, ok := contracts[app.Abbr]
		if !ok {
			t.Errorf("%s: no contract recorded", app.Abbr)
			continue
		}
		tr := app.Generate()
		capacity := tr.Footprint() * 75 / 100
		cfg := hpe.SystemConfig(capacity)
		lru := hpe.Simulate(cfg, tr, hpe.NewLRU())
		res := hpe.SimulateHPE(cfg, tr, hpe.DefaultHPEConfig())
		st, haveStats := hpe.HPEStatsOf(res)
		if !haveStats || !st.Classified {
			t.Errorf("%s: HPE never classified", app.Abbr)
			continue
		}
		if got := st.Category.String(); got != want.category {
			t.Errorf("%s: category %s, want %s", app.Abbr, got, want.category)
		}
		if got := st.Timeline[0].Strategy.String(); got != want.strategy {
			t.Errorf("%s: initial strategy %s, want %s", app.Abbr, got, want.strategy)
		}
		speedup := res.IPC / lru.IPC
		if speedup < want.minSpeedup || speedup > want.maxSpeedup {
			t.Errorf("%s: HPE/LRU speedup %.3f outside [%.2f, %.2f]",
				app.Abbr, speedup, want.minSpeedup, want.maxSpeedup)
		}
	}
}

// Golden-results regression test: the headline figures of the evaluation
// (Fig. 10/11/12 — HPE vs LRU speedups, eviction reductions, and the
// all-policy comparison) recomputed over the full 23-app catalog and checked
// against the committed results.json. A silent simulator regression now
// fails `go test ./...` instead of only surfacing when EXPERIMENTS.md is
// next regenerated. Refresh the golden file after an intentional behaviour
// change with:
//
//	go run ./cmd/hpebench -json results.json
package hpe_test

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"hpe/internal/experiments"
	"hpe/internal/probe"
)

// goldenReport mirrors cmd/hpebench's jsonReport.
type goldenReport struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics"`
}

// goldenTolerance absorbs floating-point formatting and math-library drift
// across Go releases, not simulator changes: the simulator is deterministic,
// so genuine regressions shift these aggregates by far more.
const goldenTolerance = 1e-6

func TestGoldenHeadlineResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog recomputation skipped in -short mode")
	}
	raw, err := os.ReadFile("results.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var golden []goldenReport
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parsing results.json: %v", err)
	}
	byID := map[string]goldenReport{}
	for _, g := range golden {
		byID[g.ID] = g
	}

	// Full catalog, same seed as cmd/hpebench; the parallel runner is
	// byte-identical to serial, so it is safe to use here.
	s := experiments.NewSuite(experiments.Options{Seed: 1, Workers: runtime.GOMAXPROCS(0)})
	for _, id := range []string{"fig10", "fig11", "fig12"} {
		want, ok := byID[id]
		if !ok {
			t.Fatalf("results.json has no %q entry", id)
		}
		rep, ok := s.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not dispatchable", id)
		}
		for key, gv := range want.Metrics {
			if math.Abs(gv) >= math.MaxFloat64/2 {
				continue // ±Inf clamped by the JSON writer; not comparable
			}
			mv, ok := rep.Metrics[key]
			if !ok {
				t.Errorf("%s: metric %q in golden file but not recomputed", id, key)
				continue
			}
			diff := math.Abs(mv - gv)
			if diff > goldenTolerance*math.Max(1, math.Abs(gv)) {
				t.Errorf("%s/%s: recomputed %v, golden %v (Δ %.3g) — simulator behaviour changed; "+
					"if intentional, regenerate results.json", id, key, mv, gv, diff)
			}
		}
		for key := range rep.Metrics {
			if _, ok := want.Metrics[key]; !ok && !math.IsNaN(rep.Metrics[key]) {
				t.Errorf("%s: new metric %q missing from golden file — regenerate results.json", id, key)
			}
		}
	}
}

// TestGoldenProbedRuns pins the two invariants the probe layer and the
// rewritten engine hot path must uphold together: attaching instrumentation
// (a Metrics probe on every run) changes no result, and neither does the
// worker count. Both a serial run and an 8-worker run, each fully probed,
// must reproduce the committed results.json exactly — the same golden file
// the unprobed headline test uses.
func TestGoldenProbedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full recomputation skipped in -short mode")
	}
	raw, err := os.ReadFile("results.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var golden []goldenReport
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parsing results.json: %v", err)
	}
	byID := map[string]goldenReport{}
	for _, g := range golden {
		byID[g.ID] = g
	}

	for _, workers := range []int{1, 8} {
		s := experiments.NewSuite(experiments.Options{
			Seed:    1,
			Workers: workers,
			Probe:   func(experiments.RunInfo) probe.Probe { return probe.NewMetrics() },
		})
		for _, id := range []string{"fig10", "fig11", "fig12"} {
			want, ok := byID[id]
			if !ok {
				t.Fatalf("results.json has no %q entry", id)
			}
			rep, ok := s.ByID(id)
			if !ok {
				t.Fatalf("experiment %q not dispatchable", id)
			}
			for key, gv := range want.Metrics {
				if math.Abs(gv) >= math.MaxFloat64/2 {
					continue // ±Inf clamped by the JSON writer; not comparable
				}
				mv, ok := rep.Metrics[key]
				if !ok {
					t.Errorf("workers=%d %s: metric %q in golden file but not recomputed", workers, id, key)
					continue
				}
				diff := math.Abs(mv - gv)
				if diff > goldenTolerance*math.Max(1, math.Abs(gv)) {
					t.Errorf("workers=%d %s/%s: probed run recomputed %v, golden %v (Δ %.3g) — "+
						"probes must observe without steering", workers, id, key, mv, gv, diff)
				}
			}
		}
	}
}

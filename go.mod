module hpe

go 1.22

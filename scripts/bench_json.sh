#!/bin/sh
# bench_json.sh — run the performance-trajectory harness and write the next
# numbered BENCH_<n>.json at the repo root (EXPERIMENTS.md "perf trajectory").
#
# Usage:
#   scripts/bench_json.sh            # full run: real microbench iters + full sweep
#   scripts/bench_json.sh --smoke    # 1-iteration schema smoke into a temp file
#
# Numbering is monotonic: the script scans the repo root for existing
# BENCH_<n>.json files and picks max(n)+1, so each optimisation PR appends
# one file and the series records the repo's perf history.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--smoke" ]; then
    out="$(mktemp -d)/BENCH_1.json"
    go run ./cmd/hpebench -bench-json "$out" -bench-iters 1 -quick
    rm -f "$out"
    echo "bench-json smoke OK (schema validated)"
    exit 0
fi

next=1
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n=${f#BENCH_}
    n=${n%.json}
    case $n in
    *[!0-9]* | '') continue ;;
    esac
    if [ "$n" -ge "$next" ]; then
        next=$((n + 1))
    fi
done

out="BENCH_${next}.json"
go run ./cmd/hpebench -bench-json "$out"

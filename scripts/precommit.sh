#!/bin/sh
# scripts/precommit.sh — the fast pre-commit slice of `make check`:
# formatting, go vet, hpelint (DESIGN.md §10), and the RunSpec identity
# goldens (DESIGN.md §12). Wire it up with
#
#   ln -s ../../scripts/precommit.sh .git/hooks/pre-commit
#
# or run it by hand before pushing. The full gate (tests, race subsets,
# fuzz seeds) is `make check`.
set -eu

cd "$(dirname "$0")/.."

fail=0

unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    fail=1
fi

if ! go vet ./...; then
    fail=1
fi

# hpelint, scoped to the packages this change touches — the full ./... run
# stays in `make check`. Edits under the lint infrastructure can change
# findings anywhere, so those force a full run; so does an empty diff
# (running the hook by hand on a clean tree).
changed=$(
    {
        git diff --name-only HEAD -- '*.go'
        git diff --cached --name-only -- '*.go'
    } 2>/dev/null | sort -u
)
lint_scope="./..."
if [ -n "$changed" ] && ! echo "$changed" | grep -q -e '^internal/lint/' -e '^cmd/hpelint/'; then
    pkgs=$(
        echo "$changed" | xargs -r -n1 dirname | sort -u |
            while read -r d; do
                [ -d "$d" ] && printf './%s/\n' "$d"
            done | paste -sd, -
    )
    if [ -n "$pkgs" ]; then
        lint_scope="-pkgs $pkgs"
    fi
fi

# shellcheck disable=SC2086  # lint_scope is intentionally word-split
if ! go run ./cmd/hpelint $lint_scope; then
    echo "hpelint: findings above; fix them or annotate the preceding line" >&2
    echo "with '//lint:ignore hpelint/<analyzer> reason' (see DESIGN.md §10)" >&2
    echo "(scoped to $lint_scope; 'go run ./cmd/hpelint ./...' checks everything)" >&2
    fail=1
fi

if ! go test -run SpecGoldens -count=1 ./internal/runspec/ >/dev/null; then
    echo "spec goldens: run-ID fixtures drifted (DESIGN.md §12); if deliberate," >&2
    echo "bump runspec.IDVersion and regenerate with" >&2
    echo "  go test ./internal/runspec/ -run SpecGoldens -update-spec-goldens" >&2
    fail=1
fi

exit $fail

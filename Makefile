# Developer entry points for the checks ROADMAP.md requires before merging.
# `make check` is the full pre-merge gate: tier-1 (build + test), static
# analysis (go vet + hpelint), the race-detector subsets over the suite's
# shared-cache paths, the probe hot path and the serving layer, and the
# fuzz seed corpus. One command reproduces everything CI would ask for.

GO ?= go

.PHONY: all check build test vet lint lint-bench spec-goldens race race-probe serve-check cluster-check workload-check fuzz-seed bench bench-probe bench-json bench-smoke clean

all: check

check: build vet lint spec-goldens test race race-probe serve-check cluster-check workload-check fuzz-seed bench-smoke

# Tier-1 verify (ROADMAP.md).
build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# hpelint machine-checks the repo's load-bearing invariants (DESIGN.md §10):
# determinism, map-order hygiene, probe nil-guards, context threading, lock
# discipline, hot-path allocation freedom, lock-acquisition order, and the
# /v1 error envelope. Exit 1 means a finding; fix it or annotate the line
# above with `//lint:ignore hpelint/<analyzer> reason`. The second run
# self-lints the analyzer suite: hpelint's own output must obey the
# determinism rules it enforces.
lint:
	$(GO) build ./cmd/hpelint && ./hpelint ./... && ./hpelint ./internal/lint/ ./cmd/hpelint/

# Wall-clock for the full analyzer suite over the whole repo (the call graph
# dominates). Informational; run it when touching internal/lint to keep the
# precommit slice fast.
lint-bench:
	$(GO) build ./cmd/hpelint && time ./hpelint ./...

# RunSpec identity goldens (DESIGN.md §12): the committed canonical-JSON +
# Spec.ID() fixtures must match exactly — a drift means cached results and
# client-side run IDs silently diverge. Deliberate spec changes bump
# runspec.IDVersion and regenerate with
# `go test ./internal/runspec/ -run SpecGoldens -update-spec-goldens`.
spec-goldens:
	$(GO) test -run SpecGoldens -count=1 ./internal/runspec/

# The experiment suite's shared-cache paths under the race detector (~35 s).
race:
	$(GO) test -race -run 'Concurrent|Dedup|RunPool' ./internal/experiments/

# The probe hot path and the rewritten event engine under the race detector:
# emission sites, Chrome-trace streaming, probed-vs-unprobed determinism, and
# parallel independent engines (no hidden shared state in the SoA store).
race-probe:
	$(GO) test -race -run 'Probe|Trace|Race' ./internal/probe/ ./internal/gpu/ ./internal/sim/

# The hped serving layer under the race detector: coalescer, result cache,
# admission queue, cancellation, the soak test, and the daemon's SIGTERM
# lifecycle are all concurrency-critical.
serve-check:
	$(GO) vet ./internal/server/ ./cmd/hped/
	$(GO) test -race -count=1 ./internal/server/ ./cmd/hped/

# The cluster coordinator under the race detector (DESIGN.md §13): ring
# routing, shard dispatch with re-dispatch and circuit breaking, the chaos
# tests (backend killed mid-sweep, backend paused past the health deadline),
# byte-identity of merged sweeps against single-node goldens, and the
# concurrent soak.
cluster-check:
	$(GO) vet ./internal/cluster/
	$(GO) test -race -count=1 -timeout 600s ./internal/cluster/

# Workload v2 (DESIGN.md §14) under the race detector: phase-schedule and
# colocation generators, scenario presets, and the versioned .hpet codec
# (v1/v2 round-trips, annotation tables, fuzzed header validation).
workload-check:
	$(GO) test -race -count=1 ./internal/workload/... ./internal/trace/

# Fuzz targets, seed corpus only (the -fuzz loop is interactive; run
# `go test -fuzz=FuzzEngineEquivalence ./internal/sim/`,
# `go test -fuzz=FuzzCatalogGenerate ./internal/workload/`, or
# `go test -fuzz=FuzzPhaseSchedule ./internal/workload/` to explore).
fuzz-seed:
	$(GO) test -run 'Fuzz' ./internal/workload/ ./internal/sim/ ./internal/trace/

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Probe overhead contract: BenchmarkNilProbe must track
# BenchmarkSimulatorThroughput-class numbers (nil probe = one dead branch
# per emission site); BenchmarkMetricsProbe prices the instrumentation.
bench-probe:
	$(GO) test -run '^$$' -bench 'BenchmarkNilProbe|BenchmarkMetricsProbe' -benchtime=5x -count=3 .

# Performance trajectory (EXPERIMENTS.md): append the next numbered
# BENCH_<n>.json at the repo root — engine microbenchmarks, the retained
# reference engine as in-run baseline, and the serial full-sweep wall-clock.
bench-json:
	sh scripts/bench_json.sh

# 1-iteration schema smoke of the trajectory harness (part of `make check`):
# validates that -bench-json still emits a schema-correct report without
# paying for a full measurement run.
bench-smoke:
	sh scripts/bench_json.sh --smoke

clean:
	rm -f hpelint
	$(GO) clean ./...

# Developer entry points for the checks ROADMAP.md requires before merging.
# `make check` is the full pre-merge gate: tier-1 (build + test), static
# analysis (go vet + hpelint), the race-detector subsets over the suite's
# shared-cache paths, the probe hot path and the serving layer, and the
# fuzz seed corpus. One command reproduces everything CI would ask for.

GO ?= go

.PHONY: all check build test vet lint race race-probe serve-check fuzz-seed bench bench-probe clean

all: check

check: build vet lint test race race-probe serve-check fuzz-seed

# Tier-1 verify (ROADMAP.md).
build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# hpelint machine-checks the repo's load-bearing invariants (DESIGN.md §10):
# determinism, map-order hygiene, probe nil-guards, context threading, and
# lock discipline. Exit 1 means a finding; fix it or annotate the line above
# with `//lint:ignore hpelint/<analyzer> reason`.
lint:
	$(GO) build ./cmd/hpelint && ./hpelint ./...

# The experiment suite's shared-cache paths under the race detector (~35 s).
race:
	$(GO) test -race -run 'Concurrent|Dedup|RunPool' ./internal/experiments/

# The probe hot path under the race detector: emission sites, Chrome-trace
# streaming, and probed-vs-unprobed determinism.
race-probe:
	$(GO) test -race -run 'Probe|Trace' ./internal/probe/ ./internal/gpu/

# The hped serving layer under the race detector: coalescer, result cache,
# admission queue, cancellation, the soak test, and the daemon's SIGTERM
# lifecycle are all concurrency-critical.
serve-check:
	$(GO) vet ./internal/server/ ./cmd/hped/
	$(GO) test -race -count=1 ./internal/server/ ./cmd/hped/

# Fuzz targets, seed corpus only (the -fuzz loop is interactive; run
# `go test -fuzz=FuzzCatalogGenerate ./internal/workload/` to explore).
fuzz-seed:
	$(GO) test -run 'Fuzz' ./internal/workload/

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Probe overhead contract: BenchmarkNilProbe must track
# BenchmarkSimulatorThroughput-class numbers (nil probe = one dead branch
# per emission site); BenchmarkMetricsProbe prices the instrumentation.
bench-probe:
	$(GO) test -run '^$$' -bench 'BenchmarkNilProbe|BenchmarkMetricsProbe' -benchtime=5x -count=3 .

clean:
	rm -f hpelint
	$(GO) clean ./...
